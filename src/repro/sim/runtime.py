"""The distributed lock-scheduler simulator.

Executes a :class:`repro.core.TransactionSystem` as a discrete-event
simulation: every transaction is a client walking its partial order,
issuing each operation to the site of its entity once all predecessors
completed. Because transactions are partial orders, a client can have
several operations in flight at different sites — including several
blocked lock requests — which is exactly the distributed behaviour the
paper's model captures and centralized simulators miss.

Lock conflicts are resolved by the configured policy
(:mod:`repro.sim.policies`); aborted transactions release their locks
and restart from scratch after a delay, keeping their original
timestamp (so wound-wait and wait-die are livelock-free).

Four pluggable subsystems extend the core loop:

* atomic commit (:mod:`repro.sim.commit`) — decides when a transaction
  that finished executing is durably committed; the two-phase
  protocols retain locks through the PREPARED window and exchange
  coordinator/participant messages;
* fault injection (:mod:`repro.sim.failures`) — crashes and repairs
  sites, aborting the transactions whose volatile state they held;
* arrivals (:mod:`repro.sim.arrivals`) — turns the run into an *open
  system*: fresh transactions keep arriving on a Poisson clock
  (``arrival_rate``) until ``max_transactions`` or ``max_time``, and a
  warm-up window (``warmup_time``) restricts the steady-state metrics
  (throughput, in-flight concurrency, latency percentiles) to the
  post-transient regime;
* replica control (:mod:`repro.sim.replication`) — maps each logical
  entity to ``replication_factor`` replica sites and routes every Lock
  through the configured protocol (``rowa``, ``rowa-available``,
  ``quorum``): reads take *shared* locks on one replica or a read
  quorum, writes take *exclusive* locks on all/available/a quorum of
  replicas, and a Lock completes only when every chosen replica
  granted. At factor 1 every protocol degenerates to the single-copy
  simulator bit for bit.

The subsystems register their own event kinds on the runtime's
:class:`~repro.sim.events.HandlerRegistry`, so the main loop is a pure
dispatcher and never enumerates event types.

Observability (:mod:`repro.sim.observe`) rides on top: when
``config.observe`` requests it, an :class:`~repro.sim.observe.
ObserverHub` interposes probes on the dispatch seam, the schedule
seam (:meth:`Simulator.schedule` is shadowed so every enqueued event
emits a ``sched`` probe at send time, which lets consumers tell
in-flight network messages from idle waiting), the lock-cell
observers, the result counters, and the lifecycle methods — tracing,
metrics time series, flight-recorder dumps, and latency attribution
all come from that stream. With the field unset nothing attaches and
the hot paths are untouched.

Fast-path architecture: at construction the simulator *interns* the
schema — entities and sites are mapped to dense integer ids in sorted
name order — and compiles each transaction's hot data (per-node entity
ids, ancestor masks, lock-node table, cross-site delay mask) onto its
instance. All run-time lock state (:class:`~repro.sim.locks.
SiteLockManager` keys, ``waiting``/``retained``/``lock_sites``) is
keyed on those ids; because id order equals sorted-name order, every
historically ``sorted()``-dependent iteration is preserved bit for bit
while the comparisons and hashes become integer-cheap. The waits-for
graph is maintained incrementally (:mod:`repro.sim.waitsfor`) instead
of being rebuilt each detection tick, the committed-operation trace is
recorded append-only in dispatch order (already sorted — no final
sort), and finished transactions retire from every per-event scan.
Name-based accessors (``lock_tables()``, ``site_names()``,
``entity_id()``/``site_id()``) remain for subsystems and tests.

The committed operations form a trace that replays as a legal
:class:`repro.core.Schedule`; the runtime closes the loop with the
static theory by testing that trace for serializability with the same
D(S) machinery (or, when shared read locks are in play and the
exclusive-lock replay no longer applies, with the classical conflict
graph over the same lock-order data).
"""

from __future__ import annotations

import dataclasses
import random
from collections import deque
from dataclasses import dataclass
from heapq import heappop as _heappop, heappush as _heappush
from types import MappingProxyType

from repro.core.operations import OpKind
from repro.core.schedule import Schedule
from repro.core.serialization import is_serializable
from repro.core.system import GlobalNode, TransactionSystem
from repro.core.transaction import Transaction
from repro.sim.arrivals import ArrivalProcess, OpenSystem
from repro.sim.commit import make_protocol
from repro.sim.durability import DurabilityConfig, DurabilityManager
from repro.sim.events import EventQueue, HandlerRegistry
from repro.sim.failures import FailureInjector
from repro.sim.locks import EXCLUSIVE, SHARED, SiteLockManager
from repro.sim.metrics import SimulationResult
from repro.sim.network import NetworkConfig, NetworkModel
from repro.sim.observe import ObserveConfig, ObserverHub
from repro.sim.policies import Decision, Policy, make_policy
from repro.sim.replication import ReplicaManager
from repro.sim.waitsfor import WaitsForGraph
from repro.sim.workload import WorkloadSpec
from repro.util.graphs import find_cycle, find_cycle_ints

__all__ = ["SimulationConfig", "Simulator", "simulate"]

_RUNNING = "running"
_PREPARED = "prepared"
_COMMITTED = "committed"
_ABORTED = "aborted"

_LOCK = OpKind.LOCK
_UNLOCK = OpKind.UNLOCK


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable parameters of a run.

    Attributes:
        service_time: simulated duration of one operation at a site.
        network_delay: extra latency charged when an operation depends
            on a predecessor that completed at a *different* site (the
            cross-site coordination message of the distributed model);
            also the per-hop cost of commit-protocol messages and of
            replica-lock fan-out to non-primary replicas.
        arrival_spread: transactions start uniformly in
            [0, arrival_spread].
        restart_delay: wait before an aborted transaction retries.
        restart_jitter: extra uniform jitter added to restarts (avoids
            lock-step retry storms).
        timeout: lock-wait deadline for the timeout policy.
        detection_interval: period of the wait-for-graph scan for the
            detection policy.
        commit_protocol: atomic-commit protocol name (``instant``,
            ``two-phase``, ``presumed-abort``, ``paxos-commit``).
        commit_timeout: retry/vote-collection period of the two-phase
            protocols; for ``paxos-commit`` it is also the takeover
            deadline — a round whose leader stays down this long is
            adopted by the next up acceptor.
        commit_fault_tolerance: F of Paxos Commit: each round runs
            2F+1 acceptor sites (clamped to the schema's site count),
            so decisions survive F simultaneous site failures. F=0
            degenerates to a single coordinator-sited acceptor —
            message-for-message 2PC. Ignored by the other protocols.
        failure_rate: per-site crash rate (crashes per unit time);
            0 disables fault injection entirely.
        repair_time: mean downtime of a crashed site.
        replica_protocol: replica-control protocol name (``rowa``,
            ``rowa-available``, ``quorum``); the replication factor
            itself is a workload property
            (``WorkloadSpec.replication_factor``).
        catchup_time: period of the anti-entropy scan a recovering site
            runs under ``rowa-available`` — until the scan validates a
            copy (or a write refreshes it) the copy serves no reads.
        arrival_rate: open-system arrival rate (transactions per unit
            time); 0 (the default) disables the arrival process
            entirely, reproducing the closed-batch simulator.
        max_transactions: stop injecting after this many arrivals
            (0 = unbounded; ``max_time`` then limits the run).
        warmup_time: start of the steady-state measurement window;
            throughput, in-flight concurrency, and latency percentiles
            ignore everything before it.
        workload: spec the arrival process draws transactions from
            (defaults to ``WorkloadSpec()``); also carries the
            replication factor applied to the run's schema.
        workload_seed: seed of the arrival schema (and, in sweeps, of
            closed-batch workload generation) — kept separate from
            ``seed`` so replicates stress the same database.
        max_time: hard stop for the simulated clock.
        max_events: hard stop on processed events.
        seed: RNG seed (arrivals and jitter).
        observe: observability configuration
            (:class:`~repro.sim.observe.ObserveConfig`); None (the
            default) attaches nothing, leaving every hot path exactly
            as fast — and every digest exactly as it was — without it.
        network: adversarial-network configuration
            (:class:`~repro.sim.network.NetworkConfig`): message loss,
            duplication, jitter, and partition episodes, plus the
            retransmission substrate that lets protocols survive them.
            None (the default) or an all-zero config attaches nothing
            — the perfect network, bit-identical to the seed runs.
        durability: durable-storage configuration
            (:class:`~repro.sim.durability.DurabilityConfig`): per-site
            write-ahead logs with protocol force points costing
            ``flush_time`` each, crash truncation to log contents,
            replay-based recovery with in-doubt inquiry, and the
            tail-loss/torn-write/amnesia fault model. None (the
            default) keeps the idealized crash model — no log, no
            forces, bit-identical to the seed runs.
    """

    service_time: float = 1.0
    network_delay: float = 0.0
    arrival_spread: float = 2.0
    restart_delay: float = 4.0
    restart_jitter: float = 2.0
    timeout: float = 12.0
    detection_interval: float = 8.0
    commit_protocol: str = "instant"
    commit_timeout: float = 6.0
    commit_fault_tolerance: int = 1
    failure_rate: float = 0.0
    repair_time: float = 10.0
    replica_protocol: str = "rowa"
    catchup_time: float = 6.0
    arrival_rate: float = 0.0
    max_transactions: int = 0
    warmup_time: float = 0.0
    workload: WorkloadSpec | None = None
    workload_seed: int = 0
    max_time: float = 100_000.0
    max_events: int = 1_000_000
    seed: int = 0
    observe: ObserveConfig | None = None
    network: NetworkConfig | None = None
    durability: DurabilityConfig | None = None

    def __post_init__(self) -> None:
        # A negative delay would silently corrupt event-heap ordering
        # (events scheduled into the past); reject the rate/duration
        # parameters outright, mirroring WorkloadSpec's validation.
        for label, value in (
            ("network_delay", self.network_delay),
            ("commit_timeout", self.commit_timeout),
            ("failure_rate", self.failure_rate),
            ("repair_time", self.repair_time),
        ):
            if value < 0:
                raise ValueError(f"{label} must be >= 0, got {value}")


class _Instance:
    """Mutable execution state of one transaction.

    Besides the dynamic fields, the instance carries the transaction's
    *compiled* hot data, precomputed once at injection: per-node entity
    ids, per-node direct-predecessor masks, the eid -> Lock-node table,
    the read (shared-mode) eid set, the written eids in sorted order,
    and the bitmask of nodes whose issue crosses sites (network delay).
    """

    __slots__ = (
        "index", "status", "timestamp", "attempt", "done", "issued",
        "waiting", "commit_time", "start_time", "exec_done_time",
        "prepared_since", "retained", "lock_sites", "pending_replicas",
        "eids", "kinds", "preds", "succ", "roots_mask", "all_mask",
        "lock_node_of", "shared_eids", "write_eids", "cross_mask",
        "home_sid",
    )

    def __init__(self, index: int):
        self.index = index
        self.status = _RUNNING
        self.timestamp = 0.0  # first-start time; kept across restarts
        self.attempt = 0
        self.done = 0  # bitmask of completed nodes
        self.issued = 0  # bitmask of issued nodes
        self.waiting: dict[tuple[int, int], float] = {}  # (eid, sid)
        self.commit_time = -1.0
        self.start_time = 0.0
        self.exec_done_time = -1.0  # last operation's completion time
        self.prepared_since = -1.0  # entry into the PREPARED window
        self.retained: set[tuple[int, int]] = set()  # (eid, sid)
        # eid -> replica sids this attempt locks (protocol choice)
        self.lock_sites: dict[int, tuple[int, ...]] = {}
        # eid -> replica sids whose grant is still outstanding
        self.pending_replicas: dict[int, set[int]] = {}
        # compiled transaction data (filled by Simulator._compile)
        self.eids: list[int] = []
        self.kinds: list[OpKind] = []
        self.preds: list[int] = []
        self.succ: list[int] = []
        self.roots_mask = 0
        self.all_mask = 0
        self.lock_node_of: dict[int, int] = {}
        self.shared_eids: frozenset[int] = frozenset()
        self.write_eids: tuple[int, ...] = ()
        self.cross_mask = 0
        # The client's home site: primary sid of the first entity —
        # the source endpoint of client-originated network messages.
        self.home_sid = 0


class Simulator:
    """One simulation run over a system, policy, and configuration."""

    def __init__(
        self,
        system: TransactionSystem,
        policy: Policy | str = "blocking",
        config: SimulationConfig | None = None,
    ):
        self.system: TransactionSystem | OpenSystem = system
        self.policy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self.config = config or SimulationConfig()
        self._rng = random.Random(self.config.seed)
        self._queue = EventQueue()
        self._registry = HandlerRegistry()
        self.arrivals: ArrivalProcess | None = None
        if self.config.arrival_rate > 0:
            # Open system: wrap the (possibly empty) closed batch in a
            # growable view over the merged batch + arrival schema.
            self.arrivals = ArrivalProcess(self)
            self.system = OpenSystem(
                system.transactions,
                system.schema.merged_with(self.arrivals.schema),
            )
        # Intern the schema: dense ids in sorted name order, so id
        # order reproduces every historically sorted iteration (site
        # release order in _abort, retained-lock order, participant
        # lists) while the hot-path keys become integers.
        schema = self.system.schema
        self._entity_names: list[str] = sorted(schema.entities)
        self._entity_ids: dict[str, int] = {
            name: eid for eid, name in enumerate(self._entity_names)
        }
        self._site_names: list[str] = sorted(schema.sites)
        self._site_ids: dict[str, int] = {
            name: sid for sid, name in enumerate(self._site_names)
        }
        self._site_list: list[SiteLockManager] = [
            SiteLockManager(name) for name in self._site_names
        ]
        # sid order == sorted name order: _abort releases locks site by
        # site, so this iteration order is behaviour, not presentation.
        self._sites: dict[str, SiteLockManager] = {
            name: site for name, site in zip(self._site_names, self._site_list)
        }
        self._lock_tables_view = MappingProxyType(self._sites)
        self._site_names_view = tuple(self._site_names)
        self._service_time = self.config.service_time
        self._primary_sid: list[int] = [
            self._site_ids[schema.site_of(name)]
            for name in self._entity_names
        ]
        self._site_up: list[bool] = [True] * len(self._site_names)
        self._down_count = 0
        self._net_delay = self.config.network_delay
        self._now = 0.0
        self._events_processed = 0
        self._inflight = 0
        self._retained_total = 0
        # (txn, node, attempt) per completed operation, appended in
        # dispatch order — which IS (time, seq) order, so the entries
        # need carry neither. The bound append is cached: one call per
        # simulated operation.
        self._trace: list[tuple[int, int, int]] = []
        self._trace_append = self._trace.append
        self._on_conflict = self.policy.on_conflict
        # Policies that never abort anyone on conflict (blocking,
        # detect, timeout — the base rule) skip the whole decision
        # round: a blocked request just parks in the queue, and grant
        # re-evaluation has nothing to decide.
        self._policy_pure_wait = (
            type(self.policy).on_conflict is Policy.on_conflict
        )
        # The waits-for graph is maintained incrementally for the
        # policies that consume it (the periodic detector, and the
        # blocking policy's final deadlock verdict); the deadlock-free
        # policies skip the bookkeeping entirely.
        self._waits_for: WaitsForGraph | None = None
        # Mutation count of the waits-for graph at the last detection
        # scan that found no cycle (-1 = no clean scan yet): while the
        # count stands still the graph is unchanged and a rescan would
        # provably find nothing.
        self._clean_scan_version = -1
        if self.policy.uses_detection or self.policy.name == "blocking":
            self._waits_for = WaitsForGraph()
            n_sites = len(self._site_names)
            for sid, site in enumerate(self._site_list):
                site.observer = self._waits_for.observer(sid, n_sites)
        self._instances = []
        for index in range(len(self.system)):
            inst = _Instance(index)
            self._compile(inst, self.system[index])
            self._instances.append(inst)
        self.result = SimulationResult(
            policy=self.policy.name,
            commit_protocol=self.config.commit_protocol,
            replica_protocol=self.config.replica_protocol,
            total=len(self.system),
            warmup_time=self.config.warmup_time,
        )
        self.replicas = ReplicaManager(self)
        self.result.replication_factor = (
            self.replicas.schema.replication_factor
        )
        self._register_core_handlers()
        # Durable storage wires before the commit protocols: their
        # handlers branch on `sim.durability` at event time (None = the
        # exact pre-durability instruction stream), so the attribute
        # must exist — and the flush/requery handlers be registered —
        # by the time any protocol event runs.
        self.durability: DurabilityManager | None = None
        if self.config.durability is not None:
            self.durability = DurabilityManager(self)
            self.durability.attach()
        self.commit = make_protocol(self.config.commit_protocol)
        self.commit.attach(self)
        self._retains_locks = self.commit.retains_locks
        self.failures: FailureInjector | None = None
        if self.config.failure_rate > 0:
            self.failures = FailureInjector(self)
            self.failures.attach()
        # The adversarial network attaches after the protocols wired
        # their handlers (its delivery path re-dispatches their event
        # kinds) and before observability (so probe shadows wrap the
        # whole chaos path). With the field unset or all-zero, nothing
        # attaches and transmit() stays a pass-through to schedule().
        self.network: NetworkModel | None = None
        if self.config.network is not None and self.config.network.enabled:
            self.network = NetworkModel(self)
            self.network.attach()
        # Without fault injection no site ever goes down and no replica
        # ever goes stale, so every protocol's site choice is a
        # constant of the schema — precompute the routing tables and
        # skip the per-request protocol call. Partition episodes make
        # reachability (and hence routing) time-dependent, so they
        # disable the constant tables too.
        self._route_read: list[tuple[int, ...]] | None = None
        self._route_write: list[tuple[int, ...]] | None = None
        if self.failures is None and (
            self.network is None
            or not self.network.config.partitions_possible
        ):
            # The manager computed these once already; share them.
            self._route_read, self._route_write = (
                self.replicas.cached_routes()
            )
        if self.arrivals is not None:
            self.arrivals.attach()
        # Observability attaches last, once every subsystem wired its
        # handlers and observers: all probing is interposition (see
        # repro.sim.observe.probes), so when the field is unset the
        # simulator runs the exact uninstrumented instruction stream.
        self.observe: ObserverHub | None = None
        if self.config.observe is not None and self.config.observe.enabled:
            self.observe = ObserverHub(self, self.config.observe)
            self.observe.attach()

    def _register_core_handlers(self) -> None:
        reg = self._registry
        reg.register("begin", self._on_begin)
        reg.register("issue", self._on_issue)
        reg.register("replica_req", self._on_replica_req)
        reg.register("op_done", self._on_op_done)
        reg.register("restart", self._on_restart)
        reg.register("timeout", self._on_timeout)
        reg.register("detect", self._on_detect)

    def _compile(self, inst: _Instance, t: Transaction) -> None:
        """Precompute the transaction's hot data onto its instance."""
        eid_of = self._entity_ids
        ops = t.ops
        eids = [eid_of[op.entity] for op in ops]
        inst.eids = eids
        inst.kinds = [op.kind for op in ops]
        inst.home_sid = self._primary_sid[eids[0]] if eids else 0
        dag = t.dag
        n = len(ops)
        # Readiness runs on *direct-predecessor* masks: a node is ready
        # iff its predecessors completed, which — because the done set
        # of an attempt is always a down-set — coincides with "all
        # ancestors completed" at every step. Direct masks are stored
        # on the Dag already (borrowed, not copied), so trusted
        # transactions never materialize their transitive closure.
        preds = dag.predecessor_masks()
        inst.preds = preds
        inst.succ = dag.successor_masks()
        roots = 0
        for node in range(n):
            if not preds[node]:
                roots |= 1 << node
        inst.roots_mask = roots
        inst.all_mask = (1 << n) - 1
        inst.lock_node_of = {
            eid_of[entity]: t.lock_node(entity) for entity in t.entities
        }
        if t.read_set:
            inst.shared_eids = frozenset(
                eid_of[entity] for entity in t.read_set
            )
        inst.write_eids = tuple(sorted(
            eid_of[entity] for entity in t.entities - t.read_set
        ))
        if self._net_delay > 0:
            primary = self._primary_sid
            mask = 0
            for node in range(n):
                here = primary[eids[node]]
                bits = preds[node]
                while bits:
                    low = bits & -bits
                    pred = low.bit_length() - 1
                    bits ^= low
                    if primary[eids[pred]] != here:
                        mask |= 1 << node
                        break
            inst.cross_mask = mask

    # ------------------------------------------------------------------
    # subsystem surface (commit protocols, failure injection)
    # ------------------------------------------------------------------

    def register_handler(self, kind: str, handler) -> None:
        """Claim an event kind for a subsystem handler."""
        self._registry.register(kind, handler)

    def schedule(self, delay: float, payload: tuple) -> None:
        """Schedule ``payload`` at ``now + delay``.

        Inlines :meth:`EventQueue.push` — one schedule per simulated
        operation makes the extra frame measurable.

        This is also an observability seam: when observers are
        attached, :meth:`ObserverHub.attach` shadows this method on
        the instance with a wrapper that emits a ``sched`` probe
        before enqueueing, so consumers see message *send* times, not
        just deliveries.
        """
        time = self._now + delay
        if not (time >= 0):
            raise ValueError(f"event time must be non-negative, got {time}")
        queue = self._queue
        _heappush(queue._heap, (time, queue._seq, payload))
        queue._seq += 1

    def transmit(
        self, src_sid: int, dst_sid: int, delay: float, payload: tuple
    ) -> None:
        """Send a cross-site message from ``src_sid`` to ``dst_sid``.

        The network seam: the default body is exactly
        :meth:`schedule` — a perfect network — and
        :class:`~repro.sim.network.NetworkModel` shadows this method
        on the instance to apply loss, duplication, jitter, partition
        cuts, and the retransmission substrate. ``self.schedule`` is
        resolved at call time, so the ObserverHub's ``sched``-probe
        shadow keeps seeing every enqueue either way.
        """
        self.schedule(delay, payload)

    def suspect_down(self, site: str) -> bool:
        """Whether a protocol should *suspect* ``site`` has failed.

        Without a network model this is omniscient truth
        (``not site_is_up``), the pre-network behaviour. With one
        attached it becomes timeout-based failure suspicion: a site is
        suspected while it is crashed *or* while the oldest unacked
        message addressed to it is older than the configured
        ``suspect_timeout`` — which is all a real protocol could
        observe, and what lets a partitioned-but-up site be routed
        around without ever being marked crashed.
        """
        return not self.site_is_up(site)

    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    def instance(self, txn: int) -> _Instance:
        """The mutable state of transaction ``txn``."""
        return self._instances[txn]

    def entity_id(self, entity: str) -> int:
        """The interned id of ``entity`` (schema-wide, sorted order)."""
        return self._entity_ids[entity]

    def entity_name(self, eid: int) -> str:
        """The entity name of interned id ``eid``."""
        return self._entity_names[eid]

    def site_id(self, site: str) -> int:
        """The interned id of ``site`` (schema-wide, sorted order)."""
        return self._site_ids[site]

    def site_name(self, sid: int) -> str:
        """The site name of interned id ``sid``."""
        return self._site_names[sid]

    def add_transaction(self, txn: Transaction) -> int:
        """Inject ``txn`` into the running open system, starting now.

        Only valid in open-system mode (the arrival process is the
        caller); the new client's timestamp is its arrival time, so the
        RSL policies' age comparisons extend naturally to arrivals.
        """
        index = self.system.append(txn)
        inst = _Instance(index)
        self._compile(inst, txn)
        inst.timestamp = self._now
        inst.start_time = self._now
        self._instances.append(inst)
        self.result.total += 1
        self.result.injected += 1
        self._inflight += 1
        self._issue_ready(inst)
        return index

    def lock_tables(self) -> MappingProxyType:
        """The per-site lock tables, keyed by site name.

        A cached read-only view — identical object on every call, so
        per-event callers (commit and failure subsystems) allocate
        nothing. Lock-table entity keys are interned ids
        (:meth:`entity_id`).
        """
        return self._lock_tables_view

    def site_names(self) -> tuple[str, ...]:
        """All site names, sorted (cached, read-only)."""
        return self._site_names_view

    def site_is_up(self, site: str) -> bool:
        """Whether ``site`` is up (always True without fault
        injection)."""
        return self.failures is None or self._site_up[self._site_ids[site]]

    def site_id_is_up(self, sid: int) -> bool:
        """Id-keyed :meth:`site_is_up` (hot path)."""
        return self.failures is None or self._site_up[sid]

    def _mark_site(self, site: str, up: bool) -> None:
        """Failure-injector hook: flip the interned up/down flag."""
        sid = self._site_ids[site]
        if self._site_up[sid] != up:
            self._site_up[sid] = up
            self._down_count += -1 if up else 1

    def has_uncommitted(self) -> bool:
        """Whether any transaction has not committed yet.

        While the arrival process is still injecting, more work is
        always coming, so the answer is True even if every transaction
        injected so far has committed — subsystem upkeep loops (crash
        scheduling, detection scans) must not stop between arrivals.
        """
        if self.arrivals is not None and not self.arrivals.finished:
            return True
        return self.result.committed < len(self.system)

    def transaction_sites(self, txn: int) -> tuple[str, list[str]]:
        """``(coordinator, participants)`` of a commit round.

        The coordinator is the first replica site the attempt locked
        for its first operation's entity — the primary whenever the
        primary is up, and an up replica the protocol routed to when it
        is not (a crashed primary must not coordinate a round it never
        participated in). The participants are every replica site the
        attempt actually locked — under replication that enlists every
        write-replica (and read-quorum) site in the commit round.
        """
        inst = self._instances[txn]
        first_eid = inst.eids[0]
        lock_sids = inst.lock_sites.get(first_eid)
        coordinator_sid = (
            lock_sids[0] if lock_sids else self._primary_sid[first_eid]
        )
        names = self._site_names
        participants = [
            names[sid]
            for sid in sorted({
                sid
                for sids in inst.lock_sites.values()
                for sid in sids
            })
        ]
        return names[coordinator_sid], participants

    def acceptor_sites(self, coordinator: str, count: int) -> tuple[str, ...]:
        """``count`` acceptor sites, drawn deterministically from the
        schema.

        The rotation starts at the coordinator's site (so F=0 yields
        exactly the coordinator, reproducing a single-registrar 2PC
        round) and continues through the schema's sorted site order,
        wrapping. ``count`` is clamped to the site count: a 3-site
        schema cannot seat 5 acceptors. Seed-free and independent of
        run history — every attempt of a transaction, and every leader
        of a round, derives the same acceptor set.
        """
        names = self._site_names
        n = len(names)
        count = max(1, min(count, n))
        start = self._site_ids[coordinator]
        return tuple(names[(start + k) % n] for k in range(count))

    def leader_takeover(self, txn: int, new_leader: str) -> None:
        """Record that a commit round's leadership moved.

        The seam non-blocking protocols report through when a down
        coordinator is deposed: the counter feeds the results layer,
        and observability (when attached) sees the subsequent protocol
        traffic under the new leader's site.
        """
        self.result.coordinator_takeovers += 1

    def mark_prepared(self, inst: _Instance) -> None:
        """Enter the PREPARED window: unabortable, locks retained."""
        inst.status = _PREPARED
        inst.exec_done_time = self._now
        inst.prepared_since = self._now

    def finish_commit(self, inst: _Instance) -> None:
        """Commit the transaction at the current time."""
        if inst.exec_done_time < 0:
            inst.exec_done_time = self._now
        inst.status = _COMMITTED
        inst.commit_time = self._now
        self.result.committed += 1
        self._inflight -= 1
        if self._now >= self.config.warmup_time:
            self.result.measured_committed += 1
        self.replicas.on_commit(inst)

    def abort_from_commit(self, inst: _Instance) -> None:
        """Abort a PREPARED transaction whose commit round failed."""
        if inst.status != _PREPARED:
            return
        self.result.commit_aborts += 1
        self.release_retained(inst)
        inst.status = _RUNNING  # re-enter the abortable state
        inst.prepared_since = -1.0
        self._abort(inst)

    def release_retained(
        self, inst: _Instance, site_name: str | None = None
    ) -> None:
        """Release locks retained past their Unlock operation.

        Restricted to one site when ``site_name`` is given (a commit
        decision arriving at that participant). Waiters blocked behind
        the retained lock have the prepared portion of their wait
        charged to ``prepared_block_time``.
        """
        only_sid = None if site_name is None else self._site_ids[site_name]
        prepared_since = inst.prepared_since
        for eid, held_at in sorted(inst.retained):
            if only_sid is not None and held_at != only_sid:
                continue
            inst.retained.discard((eid, held_at))
            self._retained_total -= 1
            if prepared_since >= 0:
                # Lock-retention accounting: how long this entry sat
                # retained past its holder's PREPARE (the quantity the
                # EXP-RECOVERY bench plots against flush cost).
                self.result.retained_lock_time += (
                    self._now - prepared_since
                )
            site = self._site_list[held_at]
            holders = site.holders_map(eid)
            if holders is None or inst.index not in holders:
                continue  # defensive: already force-released
            if inst.prepared_since >= 0:
                queue = site.queue_map(eid)
                if queue:
                    instances = self._instances
                    for waiter in queue:
                        begun = instances[waiter].waiting.get((eid, held_at))
                        if begun is not None:
                            self.result.prepared_block_time += (
                                self._now
                                - max(begun, inst.prepared_since)
                            )
            for granted in site.release(inst.index, eid):
                self._on_grant(granted, eid, held_at)

    def crash_site(self, site_name: str) -> None:
        """Abort every RUNNING transaction with lock state at the site.

        PREPARED transactions are not aborted — they already voted in
        a commit round. What happens to their locks depends on the
        durability model: without one (``config.durability`` unset)
        the legacy idealization applies and the retained locks simply
        stay across the crash; with one, the failure injector follows
        this call with :meth:`DurabilityManager.on_site_crash`, which
        wipes the site's volatile lock table and leaves recovery
        replay to re-acquire whatever the write-ahead log implies.
        Waiters go first so that releasing the holders' locks does not
        grant work to a site that is down.
        """
        site = self._sites[site_name]
        txns = site.involved()
        waiters = [t for t in txns if site.waiting_for(t)]
        waiter_set = set(waiters)
        holders = [t for t in txns if t not in waiter_set]
        for txn in waiters + holders:
            inst = self._instances[txn]
            if inst.status == _RUNNING:
                self.result.crash_aborts += 1
                self._abort(inst)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _site_for_entity(self, entity: str) -> SiteLockManager:
        """The lock table of the entity's *primary* replica."""
        return self._site_list[self._primary_sid[self._entity_ids[entity]]]

    # ------------------------------------------------------------------
    # issuing operations
    # ------------------------------------------------------------------

    def _issue_ready(self, inst: _Instance) -> None:
        """Issue every currently ready, unissued node (ascending id).

        Readiness is event-driven: a node becomes ready exactly when a
        fresh attempt starts (its roots) or when its last outstanding
        ancestor completes (handled incrementally in ``_on_op_done``
        via the successor masks), so this full pass only ever runs with
        ``issued == 0`` — but it stays correct for any state.
        """
        if inst.status != _RUNNING:
            return
        pending = (
            inst.roots_mask if not inst.issued
            else inst.all_mask & ~inst.issued
        )
        self._issue_nodes(inst, pending)

    def _issue_nodes(self, inst: _Instance, pending: int) -> None:
        """Issue the ready subset of the ``pending`` node mask.

        The non-Lock body of ``_issue_one`` is inlined for the
        overwhelmingly common case (an action or unlock at an up site):
        one event per operation makes this the single hottest loop of a
        run, and the extra call frame was measurable.
        """
        not_done = ~inst.done
        preds = inst.preds
        kinds = inst.kinds
        net_delay = self._net_delay
        cross = inst.cross_mask
        network = self.network
        while pending:
            low = pending & -pending
            node = low.bit_length() - 1
            pending ^= low
            if preds[node] & not_done:
                continue
            inst.issued |= low
            if net_delay > 0 and cross >> node & 1:
                if network is None or kinds[node] is _LOCK:
                    # Lock issues are client-local decisions — the
                    # network cost (and the chaos) of acquisition
                    # rides on the replica fan-out.
                    self.schedule(
                        net_delay, ("issue", inst.index, node, inst.attempt)
                    )
                else:
                    eid = inst.eids[node]
                    sites = inst.lock_sites.get(eid)
                    self.transmit(
                        inst.home_sid,
                        sites[0] if sites else self._primary_sid[eid],
                        net_delay,
                        ("issue", inst.index, node, inst.attempt),
                    )
                continue
            if kinds[node] is _LOCK or self.failures is not None:
                self._issue_one(inst, node)
                if inst.status != _RUNNING:
                    return  # the request aborted us (wait-die)
                continue
            self.schedule(
                self._service_time,
                ("op_done", inst.index, node, inst.attempt),
            )

    def _issue_one(self, inst: _Instance, node: int) -> None:
        if inst.kinds[node] is _LOCK:
            # The replica-control protocol owns the up/down routing for
            # lock acquisition (at factor 1 it degenerates to the
            # single-site availability check below).
            self._request_lock(inst, node)
            return
        # Actions and Unlocks execute at the replica sites the attempt
        # actually locked — not necessarily the primary, which the
        # available protocols deliberately route around when it is
        # down. At factor 1 the lock site *is* the primary, preserving
        # the seed behaviour bit for bit.
        eid = inst.eids[node]
        sites = inst.lock_sites.get(eid)
        if sites is None:
            sites = (self._primary_sid[eid],)
        if self.failures is not None:
            up = self._site_up
            if not all(up[sid] for sid in sites):
                # An operation site is down; the transaction's volatile
                # state is lost with it.
                self.result.crash_aborts += 1
                self._abort(inst)
                return
        self.schedule(
            self._service_time,
            ("op_done", inst.index, node, inst.attempt),
        )

    def _on_begin(self, txn: int) -> None:
        self._inflight += 1
        self._issue_ready(self._instances[txn])

    def _on_issue(self, txn: int, node: int, attempt: int) -> None:
        """A cross-site coordination message arrived: issue the op."""
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return
        self._issue_one(inst, node)

    def _request_lock(self, inst: _Instance, node: int) -> None:
        """Issue a Lock: fan out to the protocol's replica choice.

        The chosen replica sites are locked in parallel — shared mode
        for reads, exclusive for writes — and the Lock operation
        completes (one ``service_time`` later) once every replica
        granted. Fan-out to a non-primary replica costs one
        ``network_delay`` hop.
        """
        eid = inst.eids[node]
        shared = eid in inst.shared_eids
        mode = SHARED if shared else EXCLUSIVE
        if self._route_write is not None:
            sites = (
                self._route_read[eid] if shared else self._route_write[eid]
            )
        else:
            sites = (
                self.replicas.read_sids(eid, inst.home_sid)
                if shared
                else self.replicas.write_sids(eid, inst.home_sid)
            )
            if sites is None:
                # No legal replica set right now: under rowa a single
                # crashed replica blocks writes, under quorum a lost
                # majority blocks everything. The access fails exactly
                # like an issue to a down site.
                self.result.crash_aborts += 1
                self.result.unavailable_aborts += 1
                self._abort(inst)
                return
        inst.lock_sites[eid] = sites
        if len(sites) == 1 and (
            self._net_delay <= 0 or sites[0] == self._primary_sid[eid]
        ):
            # Single-replica fast path (factor 1, or a one-site route):
            # no fan-out bookkeeping, no pending-replica set unless the
            # request actually blocks.
            sid = sites[0]
            site = self._site_list[sid]
            if site.request(inst.index, eid, mode):
                self.schedule(
                    self._service_time,
                    ("op_done", inst.index, node, inst.attempt),
                )
                return
            # No pending-replica set: _on_grant treats a missing entry
            # as "single replica, grant completes the Lock".
            self._resolve_conflict(inst, node, eid, sid, site, mode)
            return
        inst.pending_replicas[eid] = set(sites)
        primary = self._primary_sid[eid]
        for sid in sites:
            if sid != primary and self._net_delay > 0:
                # Fan-out to a remote replica is a client message on
                # the network seam: chaos (loss, duplication, cuts)
                # and the retransmission substrate apply here.
                self.transmit(
                    inst.home_sid,
                    sid,
                    self._net_delay,
                    ("replica_req", inst.index, node, sid, inst.attempt),
                )
                continue
            self._request_replica(inst, node, sid, mode)
            if inst.status != _RUNNING:
                return  # the request aborted us (wait-die)
        self._maybe_complete_lock(inst, node, eid)

    def _on_replica_req(
        self, txn: int, node: int, sid: int, attempt: int
    ) -> None:
        """A replica-lock fan-out message arrived at a remote replica."""
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return
        eid = inst.eids[node]
        if not self.site_id_is_up(sid):
            # The replica crashed while the request was in flight.
            self.result.crash_aborts += 1
            self._abort(inst)
            return
        mode = SHARED if eid in inst.shared_eids else EXCLUSIVE
        self._request_replica(inst, node, sid, mode)
        if inst.status != _RUNNING:
            return
        self._maybe_complete_lock(inst, node, eid)

    def _request_replica(
        self, inst: _Instance, node: int, sid: int, mode: str
    ) -> None:
        """Request one replica's lock and resolve any conflict."""
        eid = inst.eids[node]
        site = self._site_list[sid]
        if site.request(inst.index, eid, mode):
            pending = inst.pending_replicas.get(eid)
            if pending is not None:
                pending.discard(sid)
            return
        self._resolve_conflict(inst, node, eid, sid, site, mode)

    def _resolve_conflict(
        self,
        inst: _Instance,
        node: int,
        eid: int,
        sid: int,
        site: SiteLockManager,
        mode: str,
    ) -> None:
        """A lock request blocked: run the policy against its blockers."""
        if self._policy_pure_wait:
            inst.waiting[(eid, sid)] = self._now
            self.result.waits += 1
            if self.policy.uses_timeout:
                self.schedule(
                    self.config.timeout,
                    ("timeout", inst.index, node, inst.attempt),
                )
            return
        holders = site.holders_map(eid)
        assert holders and inst.index not in holders
        instances = self._instances
        on_conflict = self._on_conflict
        timestamp = inst.timestamp
        if mode == SHARED and site.mode(eid) == SHARED:
            # Compatible with every holder: the block is the FIFO queue
            # itself (a writer ahead). The policy must order the
            # requester against those *conflicting queued* waiters
            # instead — leaving the edge unordered would let an old
            # reader wait behind a young writer forever, breaking the
            # prevention schemes' acyclicity argument.
            blockers = self._conflicting_ahead(site, eid, inst.index)
        elif len(holders) == 1:
            # Sole exclusive holder — the overwhelmingly common case:
            # one decision, no list bookkeeping.
            holder_inst = instances[next(iter(holders))]
            decision = on_conflict(timestamp, holder_inst.timestamp)
            if (
                decision is Decision.ABORT_HOLDER
                and holder_inst.status in (_PREPARED, _COMMITTED)
            ):
                decision = Decision.WAIT_PREPARED
                self.result.prepared_blocks += 1
            if decision is Decision.ABORT_SELF:
                granted = site.cancel_wait(inst.index, eid)
                self.result.deaths += 1
                self._abort(inst)
                for grantee in granted:
                    self._on_grant(grantee, eid, sid)
                return
            inst.waiting[(eid, sid)] = self._now
            self.result.waits += 1
            if decision is Decision.ABORT_HOLDER:
                if holder_inst.status == _RUNNING:
                    self.result.wounds += 1
                    self._abort(holder_inst)
                return
            if self.policy.uses_timeout:
                self.schedule(
                    self.config.timeout,
                    ("timeout", inst.index, node, inst.attempt),
                )
            return
        else:
            blockers = sorted(holders)
        decisions: list[tuple[_Instance, Decision]] = []
        prepared_counted = False
        for holder in blockers:
            holder_inst = instances[holder]
            decision = on_conflict(timestamp, holder_inst.timestamp)
            if (
                decision is Decision.ABORT_HOLDER
                and holder_inst.status in (_PREPARED, _COMMITTED)
            ):
                # A prepared holder cannot be wounded: it already voted
                # in a commit round. A committed holder still has its
                # release message in flight and is just as unabortable.
                # Block on the decision's arrival instead (one blocked
                # request counts once, however many holders prepared).
                decision = Decision.WAIT_PREPARED
                if not prepared_counted:
                    self.result.prepared_blocks += 1
                    prepared_counted = True
            if decision is Decision.ABORT_SELF:
                granted = site.cancel_wait(inst.index, eid)
                self.result.deaths += 1
                self._abort(inst)
                for grantee in granted:
                    self._on_grant(grantee, eid, sid)
                return
            decisions.append((holder_inst, decision))
        # The waiting decisions and ABORT_HOLDER all leave the
        # requester in the queue.
        inst.waiting[(eid, sid)] = self._now
        self.result.waits += 1
        wounded = [
            h for h, d in decisions if d is Decision.ABORT_HOLDER
        ]
        if wounded:
            for holder_inst in wounded:
                if holder_inst.status != _RUNNING:
                    continue  # an earlier wound's cascade got it first
                self.result.wounds += 1
                self._abort(holder_inst)
            return
        if self.policy.uses_timeout:
            self.schedule(
                self.config.timeout,
                ("timeout", inst.index, node, inst.attempt),
            )

    def _conflicting_ahead(
        self, site: SiteLockManager, eid: int, txn: int
    ) -> list[int]:
        """Queued waiters ahead of ``txn`` whose mode conflicts with a
        shared request (i.e. the writers it is queued behind)."""
        ahead = []
        queue = site.queue_map(eid)
        if queue:
            for waiter, wmode in queue.items():
                if waiter == txn:
                    break
                if wmode == EXCLUSIVE:
                    ahead.append(waiter)
        return ahead

    def _maybe_complete_lock(
        self, inst: _Instance, node: int, eid: int
    ) -> None:
        """Schedule op_done once every chosen replica has granted."""
        pending = inst.pending_replicas.get(eid)
        if pending is None or pending:
            return
        del inst.pending_replicas[eid]
        self.schedule(
            self._service_time,
            ("op_done", inst.index, node, inst.attempt),
        )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # grant / abort cascades
    #
    # A grant can wound the new holder, whose abort releases locks that
    # grant further waiters, and so on — historically this ran as
    # mutual recursion between ``_on_grant``, the waiter re-evaluation,
    # and ``_abort``, which overflowed the Python stack under extreme
    # contention (hundreds of waiters on one hot entity make the
    # cascade exactly that deep). The cascade now runs as generator
    # *frames* on an explicit deque: each frame yields the sub-cascades
    # it used to call, and the driver drains the newest frame first, so
    # the event order — and with it every digest-pinned artifact — is
    # the recursive depth-first order, replayed without consuming the
    # interpreter stack.
    # ------------------------------------------------------------------

    def _drive_cascade(self, root) -> None:
        """Run one cascade to completion (LIFO worklist of frames)."""
        child = next(root, None)
        if child is None:
            return  # the frame finished without spawning sub-cascades
        stack = deque((root, child))
        push = stack.append
        pop = stack.pop
        while stack:
            child = next(stack[-1], None)
            if child is None:
                pop()
            else:
                push(child)

    def _on_grant(self, txn: int, eid: int, sid: int) -> None:
        """A queued request of ``txn`` was granted by a release."""
        task = self._grant_step(txn, eid, sid)
        if task is not None:
            self._drive_cascade(task)

    def _grant_step(self, txn: int, eid: int, sid: int):
        """Deliver one grant; returns the follow-up cascade frame.

        The delivery itself — waking the new holder and completing (or
        advancing) its Lock operation — is plain straight-line work and
        runs right here; the return value is a worklist frame for
        whatever may *cascade* from it (handing back a stale grant, or
        re-evaluating the remaining waiters against the new holder), or
        None when no follow-up is possible. Callers inside a cascade
        yield the frame; the top-level entry point drives it.
        """
        inst = self._instances[txn]
        key = (eid, sid)
        if inst.status != _RUNNING or key not in inst.waiting:
            # Stale grant. Legitimate under abort cascades: a wound
            # deeper in the cascade can abort the grantee (re-granting
            # the entity) after this grant was recorded but before it
            # was delivered — in that case the lock already moved on
            # and there is nothing to do. If the grantee still holds
            # the lock, hand it back rather than wedging the site.
            site = self._site_list[sid]
            holders = site.holders_map(eid)
            if holders is None or txn not in holders:
                return None
            return self._stale_release_task(txn, eid, sid, site)
        self.result.wait_time += self._now - inst.waiting.pop(key)
        pending = inst.pending_replicas.get(eid)
        if pending is None:
            # Single-replica route (the fast path skipped the pending
            # set): this grant completes the Lock operation.
            self.schedule(
                self._service_time,
                ("op_done", inst.index, inst.lock_node_of[eid],
                 inst.attempt),
            )
        else:
            pending.discard(sid)
            self._maybe_complete_lock(inst, inst.lock_node_of[eid], eid)
        if self._policy_pure_wait:
            return None  # every re-evaluation decision would be WAIT
        site = self._site_list[sid]
        queue = site.queue_map(eid)
        if not queue:
            return None
        return self._reevaluate_task(inst, eid, sid, site, queue)

    def _stale_release_task(
        self, txn: int, eid: int, sid: int, site: SiteLockManager
    ):
        """Hand a stale grant back to the queue; cascade frame."""
        for granted in site.release(txn, eid):
            task = self._grant_step(granted, eid, sid)
            if task is not None:
                yield task

    def _reevaluate_task(
        self,
        inst: _Instance,
        eid: int,
        sid: int,
        site: SiteLockManager,
        queue: dict[int, str],
    ):
        """Re-run the policy for the waiters behind a fresh grant.

        The remaining waiters re-run the policy's conflict rule against
        the *new* holder ``inst``: under wound-wait an old transaction
        must not linger behind a young one that just inherited the lock
        (it wounds it), and under wait-die a young waiter behind a
        newly-granted older holder dies. Without this re-evaluation the
        RSL schemes lose their deadlock-freedom guarantee.
        """
        instances = self._instances
        on_conflict = self._on_conflict
        key = (eid, sid)
        for waiter, wmode in list(queue.items()):
            if inst.status != _RUNNING:
                return  # the holder was wounded; releases re-grant
            w_inst = instances[waiter]
            if w_inst.status != _RUNNING or key not in w_inst.waiting:
                # The snapshot is stale: an earlier iteration's abort
                # cascade already removed this waiter from the queue.
                # It must neither die again (the abort would no-op but
                # the death counter would drift) nor wound the holder
                # on behalf of a conflict that no longer exists.
                continue
            # A waiter that passed the staleness check is still queued
            # with its snapshot mode (queued modes never change), so
            # the cheap test goes first and the O(holders) mode scan
            # only runs for shared waiters.
            if wmode == SHARED and site.mode(eid) == SHARED:
                # A shared waiter behind the new shared holders has no
                # conflict with them — but it is still queued behind
                # conflicting writers, and that edge must be ordered
                # now that the holder set changed (an old reader stuck
                # behind young writers would otherwise wedge).
                yield self._order_shared_task(w_inst, eid, sid)
                continue
            decision = on_conflict(w_inst.timestamp, inst.timestamp)
            if decision is Decision.ABORT_HOLDER:
                self.result.wounds += 1
                yield self._abort_task(inst)
                return
            if decision is Decision.ABORT_SELF:
                self.result.deaths += 1
                yield self._abort_task(w_inst)

    def _order_shared_task(self, w_inst: _Instance, eid: int, sid: int):
        """Re-run the policy for a shared waiter against the queued
        writers ahead of it (its actual blockers); cascade frame."""
        site = self._site_list[sid]
        key = (eid, sid)
        for blocker in self._conflicting_ahead(site, eid, w_inst.index):
            if w_inst.status != _RUNNING or key not in w_inst.waiting:
                return  # a wound cascade granted or killed the waiter
            b_inst = self._instances[blocker]
            if b_inst.status != _RUNNING:
                continue
            decision = self._on_conflict(
                w_inst.timestamp, b_inst.timestamp
            )
            if decision is Decision.ABORT_HOLDER:
                self.result.wounds += 1
                yield self._abort_task(b_inst)
            elif decision is Decision.ABORT_SELF:
                self.result.deaths += 1
                yield self._abort_task(w_inst)
                return

    def _on_op_done(self, txn: int, node: int, attempt: int) -> None:
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return  # stale event from an aborted attempt
        done = inst.done | 1 << node
        inst.done = done
        self._trace_append((txn, node, attempt))
        if inst.kinds[node] is _UNLOCK:
            eid = inst.eids[node]
            lock_sites = inst.lock_sites[eid]
            if self._retains_locks:
                # Strict release-at-commit: the Unlock ends the lock's
                # logical scope, but the physical release rides on the
                # commit decision.
                for sid in lock_sites:
                    inst.retained.add((eid, sid))
                self._retained_total += len(lock_sites)
            else:
                site_list = self._site_list
                drive = self._drive_cascade
                grant_step = self._grant_step
                for sid in lock_sites:
                    for granted in site_list[sid].release(txn, eid):
                        task = grant_step(granted, eid, sid)
                        if task is not None:
                            drive(task)
                if inst.status != _RUNNING or inst.attempt != attempt:
                    # The release cascade wounded *us*: a grant it
                    # delivered can make this instance the new holder
                    # of a cell it was blocked on and an older waiter
                    # wounds it. The abort already reset done/issued,
                    # so the local `done` snapshot below is stale —
                    # issuing from it would lock entities for an
                    # aborted attempt.
                    return
        if done == inst.all_mask:
            self.commit.on_execution_complete(inst)
            return
        # Only direct successors of the completed node can have become
        # ready — no full pending rescan. The issue loop is the body of
        # ``_issue_nodes``, inlined: this handler runs once per
        # simulated operation and the call frame was measurable.
        pending = inst.succ[node] & ~inst.issued
        if not pending:
            return
        not_done = ~done
        preds = inst.preds
        kinds = inst.kinds
        net_delay = self._net_delay
        cross = inst.cross_mask
        network = self.network
        while pending:
            low = pending & -pending
            ready = low.bit_length() - 1
            pending ^= low
            if preds[ready] & not_done:
                continue
            inst.issued |= low
            if net_delay > 0 and cross >> ready & 1:
                if network is None or kinds[ready] is _LOCK:
                    # Lock issues stay client-local; see _issue_nodes.
                    self.schedule(
                        net_delay, ("issue", inst.index, ready, inst.attempt)
                    )
                else:
                    eid = inst.eids[ready]
                    sites = inst.lock_sites.get(eid)
                    self.transmit(
                        inst.home_sid,
                        sites[0] if sites else self._primary_sid[eid],
                        net_delay,
                        ("issue", inst.index, ready, inst.attempt),
                    )
                continue
            if kinds[ready] is _LOCK or self.failures is not None:
                self._issue_one(inst, ready)
                if inst.status != _RUNNING:
                    return  # the request aborted us (wait-die)
                continue
            self.schedule(
                self._service_time,
                ("op_done", inst.index, ready, inst.attempt),
            )

    def _abort(self, inst: _Instance) -> None:
        """Release everything, forget progress, schedule a restart."""
        if inst.status != _RUNNING:
            return  # saves the frame; _abort_task re-checks for cascades
        self._drive_cascade(self._abort_task(inst))

    def _abort_task(self, inst: _Instance):
        """Abort one transaction; frame of the cascade worklist."""
        if inst.status != _RUNNING:
            return  # an earlier frame of this cascade got it first
        inst.status = _ABORTED
        self.result.aborts += 1
        txn = inst.index
        if inst.waiting:
            site_list = self._site_list
            for eid, sid in list(inst.waiting):
                # Cancelling a queued writer can expose a compatible
                # read batch behind it; those grants must be delivered.
                for grantee in site_list[sid].cancel_wait(txn, eid):
                    task = self._grant_step(grantee, eid, sid)
                    if task is not None:
                        yield task
            inst.waiting.clear()
        for sid, site in enumerate(self._site_list):
            released = site.release_all(txn)
            if released:
                for eid, granted in released:
                    for grantee in granted:
                        task = self._grant_step(grantee, eid, sid)
                        if task is not None:
                            yield task
        inst.done = 0
        inst.issued = 0
        if inst.retained:
            self._retained_total -= len(inst.retained)
            inst.retained.clear()
        inst.lock_sites.clear()
        inst.pending_replicas.clear()
        inst.exec_done_time = -1.0
        inst.prepared_since = -1.0
        inst.attempt += 1
        self.commit.on_abort(inst)
        delay = self.config.restart_delay + self._rng.uniform(
            0, self.config.restart_jitter
        )
        self.schedule(delay, ("restart", txn, inst.attempt))

    def _on_restart(self, txn: int, attempt: int) -> None:
        inst = self._instances[txn]
        if inst.status != _ABORTED or inst.attempt != attempt:
            return
        inst.status = _RUNNING
        self._issue_ready(inst)

    def _on_timeout(self, txn: int, node: int, attempt: int) -> None:
        inst = self._instances[txn]
        eid = inst.eids[node]
        if (
            inst.status == _RUNNING
            and inst.attempt == attempt
            and any(key[0] == eid for key in inst.waiting)
        ):
            self.result.timeouts += 1
            self._abort(inst)

    # ------------------------------------------------------------------
    # deadlock machinery
    # ------------------------------------------------------------------

    def _wait_for_edges(self) -> dict[int, set[int]]:
        """Waits-for graph rebuilt from scratch: waiter -> holders.

        The reference implementation — the hot path consumes the
        incrementally maintained :class:`WaitsForGraph` instead; this
        rebuild remains for the policies that never track the graph
        and as the oracle the property tests compare against.
        """
        edges: dict[int, set[int]] = {}
        site_list = self._site_list
        for inst in self._instances:
            if inst.status != _RUNNING or not inst.waiting:
                continue
            for eid, sid in inst.waiting:
                holders = site_list[sid].holders_map(eid)
                if holders:
                    edges.setdefault(inst.index, set()).update(holders)
        return edges

    def _find_deadlock_cycle(self) -> list[int] | None:
        """One waits-for cycle, or None.

        The maintained graph supplies the *blocked set* — the whole
        point of the incremental bookkeeping is that the detector no
        longer scans every instance ever injected. The edge sets fed to
        the DFS are then materialized per blocked waiter in exactly the
        historical construction order (waiting cells in insertion
        order, holders ascending), so the cycle found — and therefore
        the victim and every downstream event — is bit-identical to the
        full-rescan implementation.
        """
        wf = self._waits_for
        if wf is None:
            edges = self._wait_for_edges()
            return find_cycle(list(edges), lambda u: edges.get(u, ()))
        if not wf:
            return None
        instances = self._instances
        site_list = self._site_list
        wf_edges = wf._edges
        memo: dict[int, set[int] | tuple] = {}
        empty = ()

        def successors(txn: int):
            cached = memo.get(txn)
            if cached is None:
                if txn in wf_edges:
                    cached = set()
                    for eid, sid in instances[txn].waiting:
                        holders = site_list[sid].holders_map(eid)
                        if holders:
                            if len(holders) == 1:
                                # Sole (exclusive) holder — the common
                                # cell shape: inserting the one key
                                # needs no sort to reproduce the
                                # historical insertion sequence.
                                cached.update(holders)
                            else:
                                cached.update(sorted(holders))
                else:
                    cached = empty
                memo[txn] = cached
            return cached

        return find_cycle_ints(
            wf.blocked_sorted(), successors, len(instances)
        )

    def _on_detect(self) -> None:
        wf = self._waits_for
        if wf is not None and wf.mutations == self._clean_scan_version:
            # Not a single cell changed since a scan that found the
            # graph acyclic, and edge deletions alone cannot create a
            # cycle — this scan would provably find nothing.
            cycle = None
        else:
            cycle = self._find_deadlock_cycle()
            if cycle is None and wf is not None:
                self._clean_scan_version = wf.mutations
        if cycle:
            instances = self._instances
            victim = max(cycle, key=lambda i: instances[i].timestamp)
            self.result.detected += 1
            self._abort(instances[victim])
        # Reschedule only while another scan could matter. New cycles
        # form only when other events run, so once every remaining
        # event sits beyond max_time (or the queue is empty), further
        # scans are provably useless — the old behaviour padded the
        # queue with one no-op scan per interval up to the horizon.
        next_event = self._queue.peek_time()
        if (
            next_event is not None
            and next_event <= self.config.max_time
            and self._now + self.config.detection_interval
            <= self.config.max_time
            and self.has_uncommitted()
        ):
            self.schedule(self.config.detection_interval, ("detect",))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation and return its result record."""
        config = self.config
        for inst in self._instances:
            start = self._rng.uniform(0, config.arrival_spread)
            inst.timestamp = start
            inst.start_time = start
            self._queue.push(start, ("begin", inst.index))
        if self.policy.uses_detection:
            self._queue.push(config.detection_interval, ("detect",))

        queue = self._queue
        heap = queue._heap  # borrowed: pop inline, one C call per event
        heappop = _heappop
        registry = self._registry
        # Instrumentation (the waits-for invariant suite) shadows
        # ``dispatch`` per registry instance; honour the wrapper when
        # present, otherwise route events through the handler table
        # directly — one dict hit and call per event instead of an
        # extra frame. (A typo'd event kind then surfaces as KeyError
        # rather than dispatch()'s RuntimeError; both are caller bugs.)
        dispatch = registry.__dict__.get("dispatch")
        handlers = registry._handlers
        result = self.result
        max_time = config.max_time
        max_events = config.max_events
        warmup_time = config.warmup_time
        track_failures = self.failures is not None
        # With fault injection or a network model attached, trailing
        # upkeep events (crash/recover pairs, retransmission chains,
        # partition episodes) can outlive the work; break once the
        # batch drained so they cannot inflate end_time.
        drain_break = track_failures or self.network is not None
        events_processed = self._events_processed
        # The in-flight integral accumulates in a local and is flushed
        # after the loop — one float add per event instead of an
        # attribute read-modify-write.
        inflight_area = result.inflight_area
        try:
            while heap:
                time, _seq, payload = heappop(heap)
                if time > max_time:
                    result.truncated = True
                    break
                now = self._now
                if time > now:
                    # Integrate the in-flight count over the
                    # steady-state window; the mean concurrency level
                    # falls out of it.
                    lo = warmup_time if warmup_time > now else now
                    if time > lo:
                        inflight_area += self._inflight * (time - lo)
                    self._now = time
                events_processed += 1
                if events_processed > max_events:
                    result.truncated = True
                    break
                if dispatch is not None:
                    dispatch(payload)
                else:
                    handlers[payload[0]](*payload[1:])
                if (
                    drain_break
                    and self._retained_total == 0
                    and not self.has_uncommitted()
                ):
                    # All work committed and every retained lock
                    # released: the only events left are future
                    # crash/recover pairs, which would inflate end_time
                    # and the crash count (or spuriously truncate the
                    # run at a tight horizon).
                    break
        finally:
            result.inflight_area = inflight_area
            self._events_processed = events_processed

        self.result.end_time = self._now
        self.replicas.finalize()
        if self.arrivals is not None:
            # The run is over; materialize the accumulated transactions
            # so trace replay sees a real (indexed) TransactionSystem.
            self.system = self.system.frozen()
        if self.result.committed < len(self.system):
            if not self._queue and not self.result.truncated:
                if self.policy.uses_detection:
                    # A detection run can only drain with work left
                    # when the scan chain stopped at the time budget —
                    # the next scan would have broken the wedge, so
                    # this is a truncation, not a permanent deadlock.
                    self.result.truncated = True
                else:
                    self.result.deadlocked = True
                    cycle = self._find_deadlock_cycle()
                    if cycle:
                        self.result.deadlock_cycle = tuple(cycle)
        self.result.latencies = [
            (inst.commit_time - inst.start_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.exec_latencies = [
            (inst.exec_done_time - inst.start_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.commit_latencies = [
            (inst.commit_time - inst.exec_done_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.start_times = [
            inst.start_time for inst in self._instances
        ]
        self.result.serializable = self._check_serializability()
        if self.observe is not None:
            self.observe.finalize()
        return self.result

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------

    def _final_steps(self, committed_only: bool) -> list[tuple[int, int]]:
        # The trace is appended in dispatch order, which is already
        # (time, seq) order — the historical sort was a no-op and is
        # gone. Steps stay plain (txn, node) pairs: Schedule validates
        # raw pairs and wraps them as GlobalNodes only on demand, so
        # the end-of-run verdict over a long trace never constructs
        # them at all.
        steps = []
        append = steps.append
        instances = self._instances
        for txn, node, attempt in self._trace:
            inst = instances[txn]
            if committed_only and inst.status != _COMMITTED:
                continue
            if inst.status == _ABORTED:
                continue
            if attempt == inst.attempt:
                append((txn, node))
        return steps

    def _check_serializability(self) -> bool | None:
        """Replay the final attempts' operations as a Schedule and test
        D(S').

        Includes the partial progress of still-running transactions:
        their completed operations are part of the history too (this is
        what makes the Lemma 1 / D(S') connection exact at deadlocks).

        Shared read locks allow concurrent holders, so read/write
        traces are not legal schedules of the exclusive-lock model;
        those runs are tested with the classical conflict graph over
        the same lock-order data.
        """
        if any(t.read_set for t in self.system):
            return self._check_conflict_serializability()
        try:
            schedule = Schedule(self.system, self._final_steps(False))
        except Exception:  # pragma: no cover - indicates a runtime bug
            return False
        return is_serializable(schedule)

    def _check_conflict_serializability(self) -> bool:
        """Acyclicity of the conflict graph of the final trace.

        Two accesses of one entity conflict unless both are reads;
        conflicting accesses are ordered by lock-acquisition order
        (concurrent shared holders are unordered *and* non-conflicting,
        so any serial order works for them).
        """
        sequences: dict[str, list[int]] = {}
        for txn, node in self._final_steps(False):
            op = self.system[txn].ops[node]
            if op.kind is OpKind.LOCK:
                sequences.setdefault(op.entity, []).append(txn)
        read_sets = [t.read_set for t in self.system]
        # Reduced conflict graph: instead of all O(k^2) conflicting
        # pairs per entity, keep only last-writer -> reader and
        # reader/last-writer -> next-writer arcs. Every dropped arc
        # (a, b) is covered by a path a -> ... -> b through the kept
        # arcs, so reachability — and therefore acyclicity, the only
        # thing tested — is unchanged while hot entities with long
        # access lists stop costing quadratic edge inserts.
        edges: dict[int, set[int]] = {}
        for entity, order in sequences.items():
            last_writer: int | None = None
            readers: list[int] = []
            for txn in order:
                if entity in read_sets[txn]:
                    if last_writer is not None and last_writer != txn:
                        edges.setdefault(last_writer, set()).add(txn)
                    readers.append(txn)
                    continue
                if readers:
                    for reader in readers:
                        if reader != txn:
                            edges.setdefault(reader, set()).add(txn)
                elif last_writer is not None and last_writer != txn:
                    edges.setdefault(last_writer, set()).add(txn)
                last_writer = txn
                readers = []
        return find_cycle_ints(
            list(edges), lambda u: edges.get(u, ()), len(self.system)
        ) is None

    def committed_schedule(self) -> Schedule:
        """The committed trace as a validated Schedule.

        Only meaningful for all-exclusive workloads: shared read locks
        permit interleavings the exclusive-lock Schedule validation
        rejects.
        """
        return Schedule(self.system, self._final_steps(True))


def simulate(
    system: TransactionSystem,
    policy: Policy | str = "blocking",
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a Simulator and run it."""
    return Simulator(system, policy, config).run()


def find_deadlocking_seed(
    system: TransactionSystem,
    max_seeds: int = 200,
    config: SimulationConfig | None = None,
) -> tuple[int, SimulationResult] | None:
    """Search arrival orders for one that wedges the blocking scheduler.

    A cheap dynamic fuzzer: statically refuted systems usually wedge
    within a few seeds, while certified systems never do (the property
    tests rely on exactly that asymmetry).

    Args:
        system: the system to stress.
        max_seeds: how many seeds to try.
        config: base configuration; its seed field is overridden.

    Returns:
        ``(seed, result)`` for the first deadlocking run, or None.
    """
    base = config or SimulationConfig()
    for seed in range(max_seeds):
        result = simulate(
            system, "blocking", dataclasses.replace(base, seed=seed)
        )
        if result.deadlocked:
            return seed, result
    return None
