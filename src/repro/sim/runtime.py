"""The distributed lock-scheduler simulator.

Executes a :class:`repro.core.TransactionSystem` as a discrete-event
simulation: every transaction is a client walking its partial order,
issuing each operation to the site of its entity once all predecessors
completed. Because transactions are partial orders, a client can have
several operations in flight at different sites — including several
blocked lock requests — which is exactly the distributed behaviour the
paper's model captures and centralized simulators miss.

Lock conflicts are resolved by the configured policy
(:mod:`repro.sim.policies`); aborted transactions release their locks
and restart from scratch after a delay, keeping their original
timestamp (so wound-wait and wait-die are livelock-free).

Three pluggable subsystems extend the core loop:

* atomic commit (:mod:`repro.sim.commit`) — decides when a transaction
  that finished executing is durably committed; the two-phase
  protocols retain locks through the PREPARED window and exchange
  coordinator/participant messages;
* fault injection (:mod:`repro.sim.failures`) — crashes and repairs
  sites, aborting the transactions whose volatile state they held;
* arrivals (:mod:`repro.sim.arrivals`) — turns the run into an *open
  system*: fresh transactions keep arriving on a Poisson clock
  (``arrival_rate``) until ``max_transactions`` or ``max_time``, and a
  warm-up window (``warmup_time``) restricts the steady-state metrics
  (throughput, in-flight concurrency, latency percentiles) to the
  post-transient regime.

All three register their own event kinds on the runtime's
:class:`~repro.sim.events.HandlerRegistry`, so the main loop is a pure
dispatcher and never enumerates event types.

The committed operations form a trace that replays as a legal
:class:`repro.core.Schedule`; the runtime closes the loop with the
static theory by testing that trace for serializability with the same
D(S) machinery.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.core.operations import OpKind
from repro.core.schedule import Schedule
from repro.core.serialization import is_serializable
from repro.core.system import GlobalNode, TransactionSystem
from repro.core.transaction import Transaction
from repro.sim.arrivals import ArrivalProcess, OpenSystem
from repro.sim.commit import make_protocol
from repro.sim.events import EventQueue, HandlerRegistry
from repro.sim.failures import FailureInjector
from repro.sim.locks import SiteLockManager
from repro.sim.metrics import SimulationResult
from repro.sim.policies import Decision, Policy, make_policy
from repro.sim.workload import WorkloadSpec
from repro.util.bitset import bits_of
from repro.util.graphs import find_cycle

__all__ = ["SimulationConfig", "Simulator", "simulate"]

_RUNNING = "running"
_PREPARED = "prepared"
_COMMITTED = "committed"
_ABORTED = "aborted"


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable parameters of a run.

    Attributes:
        service_time: simulated duration of one operation at a site.
        network_delay: extra latency charged when an operation depends
            on a predecessor that completed at a *different* site (the
            cross-site coordination message of the distributed model);
            also the per-hop cost of commit-protocol messages.
        arrival_spread: transactions start uniformly in
            [0, arrival_spread].
        restart_delay: wait before an aborted transaction retries.
        restart_jitter: extra uniform jitter added to restarts (avoids
            lock-step retry storms).
        timeout: lock-wait deadline for the timeout policy.
        detection_interval: period of the wait-for-graph scan for the
            detection policy.
        commit_protocol: atomic-commit protocol name
            (``instant``, ``two-phase``, ``presumed-abort``).
        commit_timeout: retry/vote-collection period of the two-phase
            protocols.
        failure_rate: per-site crash rate (crashes per unit time);
            0 disables fault injection entirely.
        repair_time: mean downtime of a crashed site.
        arrival_rate: open-system arrival rate (transactions per unit
            time); 0 (the default) disables the arrival process
            entirely, reproducing the closed-batch simulator.
        max_transactions: stop injecting after this many arrivals
            (0 = unbounded; ``max_time`` then limits the run).
        warmup_time: start of the steady-state measurement window;
            throughput, in-flight concurrency, and latency percentiles
            ignore everything before it.
        workload: spec the arrival process draws transactions from
            (defaults to ``WorkloadSpec()``).
        workload_seed: seed of the arrival schema (and, in sweeps, of
            closed-batch workload generation) — kept separate from
            ``seed`` so replicates stress the same database.
        max_time: hard stop for the simulated clock.
        max_events: hard stop on processed events.
        seed: RNG seed (arrivals and jitter).
    """

    service_time: float = 1.0
    network_delay: float = 0.0
    arrival_spread: float = 2.0
    restart_delay: float = 4.0
    restart_jitter: float = 2.0
    timeout: float = 12.0
    detection_interval: float = 8.0
    commit_protocol: str = "instant"
    commit_timeout: float = 6.0
    failure_rate: float = 0.0
    repair_time: float = 10.0
    arrival_rate: float = 0.0
    max_transactions: int = 0
    warmup_time: float = 0.0
    workload: WorkloadSpec | None = None
    workload_seed: int = 0
    max_time: float = 100_000.0
    max_events: int = 1_000_000
    seed: int = 0


class _Instance:
    """Mutable execution state of one transaction."""

    __slots__ = (
        "index", "status", "timestamp", "attempt", "done", "issued",
        "waiting", "commit_time", "start_time", "exec_done_time",
        "prepared_since", "retained",
    )

    def __init__(self, index: int):
        self.index = index
        self.status = _RUNNING
        self.timestamp = 0.0  # first-start time; kept across restarts
        self.attempt = 0
        self.done = 0  # bitmask of completed nodes
        self.issued = 0  # bitmask of issued nodes
        self.waiting: dict[str, float] = {}  # entity -> wait start time
        self.commit_time = -1.0
        self.start_time = 0.0
        self.exec_done_time = -1.0  # last operation's completion time
        self.prepared_since = -1.0  # entry into the PREPARED window
        self.retained: set[str] = set()  # unlocked-but-held entities


class Simulator:
    """One simulation run over a system, policy, and configuration."""

    def __init__(
        self,
        system: TransactionSystem,
        policy: Policy | str = "blocking",
        config: SimulationConfig | None = None,
    ):
        self.system: TransactionSystem | OpenSystem = system
        self.policy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self.config = config or SimulationConfig()
        self._rng = random.Random(self.config.seed)
        self._queue = EventQueue()
        self._registry = HandlerRegistry()
        self.arrivals: ArrivalProcess | None = None
        if self.config.arrival_rate > 0:
            # Open system: wrap the (possibly empty) closed batch in a
            # growable view over the merged batch + arrival schema.
            self.arrivals = ArrivalProcess(self)
            self.system = OpenSystem(
                system.transactions,
                system.schema.merged_with(self.arrivals.schema),
            )
        # Sorted site order: _abort releases locks site by site, so the
        # iteration order is behaviour, not presentation — building the
        # table from the schema's frozenset would leak the process hash
        # seed into grant order and break run-level determinism.
        self._sites = {
            site: SiteLockManager(site)
            for site in sorted(self.system.schema.sites)
        }
        self._instances = [_Instance(i) for i in range(len(self.system))]
        self._now = 0.0
        self._events_processed = 0
        self._inflight = 0
        self._trace: list[tuple[float, int, int, int, int]] = []
        self._trace_seq = 0
        self.result = SimulationResult(
            policy=self.policy.name,
            commit_protocol=self.config.commit_protocol,
            total=len(self.system),
            warmup_time=self.config.warmup_time,
        )
        self._register_core_handlers()
        self.commit = make_protocol(self.config.commit_protocol)
        self.commit.attach(self)
        self.failures: FailureInjector | None = None
        if self.config.failure_rate > 0:
            self.failures = FailureInjector(self)
            self.failures.attach()
        if self.arrivals is not None:
            self.arrivals.attach()

    def _register_core_handlers(self) -> None:
        reg = self._registry
        reg.register("begin", self._on_begin)
        reg.register("issue", self._on_issue)
        reg.register("op_done", self._on_op_done)
        reg.register("restart", self._on_restart)
        reg.register("timeout", self._on_timeout)
        reg.register("detect", self._on_detect)

    # ------------------------------------------------------------------
    # subsystem surface (commit protocols, failure injection)
    # ------------------------------------------------------------------

    def register_handler(self, kind: str, handler) -> None:
        """Claim an event kind for a subsystem handler."""
        self._registry.register(kind, handler)

    def schedule(self, delay: float, payload: tuple) -> None:
        """Schedule ``payload`` at ``now + delay``."""
        self._queue.push(self._now + delay, payload)

    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    def instance(self, txn: int) -> _Instance:
        """The mutable state of transaction ``txn``."""
        return self._instances[txn]

    def add_transaction(self, txn: Transaction) -> int:
        """Inject ``txn`` into the running open system, starting now.

        Only valid in open-system mode (the arrival process is the
        caller); the new client's timestamp is its arrival time, so the
        RSL policies' age comparisons extend naturally to arrivals.
        """
        index = self.system.append(txn)
        inst = _Instance(index)
        inst.timestamp = self._now
        inst.start_time = self._now
        self._instances.append(inst)
        self.result.total += 1
        self.result.injected += 1
        self._inflight += 1
        self._issue_ready(inst)
        return index

    def lock_tables(self) -> dict[str, SiteLockManager]:
        """The per-site lock tables, keyed by site name."""
        return dict(self._sites)

    def site_names(self) -> list[str]:
        """All site names, sorted."""
        return sorted(self._sites)

    def site_is_up(self, site: str) -> bool:
        """Whether ``site`` is up (always True without fault
        injection)."""
        return self.failures is None or self.failures.site_up(site)

    def has_uncommitted(self) -> bool:
        """Whether any transaction has not committed yet.

        While the arrival process is still injecting, more work is
        always coming, so the answer is True even if every transaction
        injected so far has committed — subsystem upkeep loops (crash
        scheduling, detection scans) must not stop between arrivals.
        """
        if self.arrivals is not None and not self.arrivals.finished:
            return True
        return self.result.committed < len(self.system)

    def transaction_sites(self, txn: int) -> tuple[str, list[str]]:
        """``(coordinator, participants)`` of a commit round.

        The coordinator is the site of the transaction's first
        operation; the participants are every site it touched.
        """
        t = self.system[txn]
        site_of = self.system.schema.site_of
        coordinator = site_of(t.ops[0].entity)
        participants = sorted({site_of(op.entity) for op in t.ops})
        return coordinator, participants

    def mark_prepared(self, inst: _Instance) -> None:
        """Enter the PREPARED window: unabortable, locks retained."""
        inst.status = _PREPARED
        inst.exec_done_time = self._now
        inst.prepared_since = self._now

    def finish_commit(self, inst: _Instance) -> None:
        """Commit the transaction at the current time."""
        if inst.exec_done_time < 0:
            inst.exec_done_time = self._now
        inst.status = _COMMITTED
        inst.commit_time = self._now
        self.result.committed += 1
        self._inflight -= 1
        if self._now >= self.config.warmup_time:
            self.result.measured_committed += 1

    def abort_from_commit(self, inst: _Instance) -> None:
        """Abort a PREPARED transaction whose commit round failed."""
        if inst.status != _PREPARED:
            return
        self.result.commit_aborts += 1
        self.release_retained(inst)
        inst.status = _RUNNING  # re-enter the abortable state
        inst.prepared_since = -1.0
        self._abort(inst)

    def release_retained(
        self, inst: _Instance, site_name: str | None = None
    ) -> None:
        """Release locks retained past their Unlock operation.

        Restricted to one site when ``site_name`` is given (a commit
        decision arriving at that participant). Waiters blocked behind
        the retained lock have the prepared portion of their wait
        charged to ``prepared_block_time``.
        """
        site_of = self.system.schema.site_of
        for entity in sorted(inst.retained):
            if site_name is not None and site_of(entity) != site_name:
                continue
            inst.retained.discard(entity)
            site = self._sites[site_of(entity)]
            if site.holder(entity) != inst.index:
                continue  # defensive: already force-released
            if inst.prepared_since >= 0:
                for waiter in site.waiters(entity):
                    begun = self._instances[waiter].waiting.get(entity)
                    if begun is not None:
                        self.result.prepared_block_time += (
                            self._now - max(begun, inst.prepared_since)
                        )
            granted = site.release(inst.index, entity)
            if granted is not None:
                self._on_grant(granted, entity)

    def crash_site(self, site_name: str) -> None:
        """Abort every RUNNING transaction with lock state at the site.

        PREPARED transactions survive: their locks are conceptually on
        the write-ahead log and stay retained across the crash.
        Waiters go first so that releasing the holders' locks does not
        grant work to a site that is down.
        """
        site = self._sites[site_name]
        txns = site.involved()
        waiters = [t for t in txns if site.waiting_for(t)]
        waiter_set = set(waiters)
        holders = [t for t in txns if t not in waiter_set]
        for txn in waiters + holders:
            inst = self._instances[txn]
            if inst.status == _RUNNING:
                self.result.crash_aborts += 1
                self._abort(inst)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _site_for_entity(self, entity: str) -> SiteLockManager:
        return self._sites[self.system.schema.site_of(entity)]

    def _ready_nodes(self, inst: _Instance) -> list[int]:
        t = self.system[inst.index]
        pending = t.dag.all_nodes_mask() & ~inst.issued
        return [
            u
            for u in bits_of(pending)
            if t.dag.ancestors(u) & ~inst.done == 0
        ]

    # ------------------------------------------------------------------
    # issuing operations
    # ------------------------------------------------------------------

    def _cross_site_delay(self, txn: int, node: int) -> float:
        """Network latency when a direct predecessor ran at another
        site."""
        if self.config.network_delay <= 0:
            return 0.0
        t = self.system[txn]
        site = self.system.schema.site_of(t.ops[node].entity)
        for pred in bits_of(t.dag.predecessors(node)):
            pred_site = self.system.schema.site_of(t.ops[pred].entity)
            if pred_site != site:
                return self.config.network_delay
        return 0.0

    def _issue_ready(self, inst: _Instance) -> None:
        if inst.status != _RUNNING:
            return
        for node in self._ready_nodes(inst):
            inst.issued |= 1 << node
            delay = self._cross_site_delay(inst.index, node)
            if delay > 0:
                self.schedule(
                    delay, ("issue", inst.index, node, inst.attempt)
                )
                continue
            self._issue_one(inst, node)
            if inst.status != _RUNNING:
                return  # the request aborted us (wait-die)

    def _issue_one(self, inst: _Instance, node: int) -> None:
        op = self.system[inst.index].ops[node]
        if not self.site_is_up(self.system.schema.site_of(op.entity)):
            # The operation's site is down; the transaction's volatile
            # state is lost with it.
            self.result.crash_aborts += 1
            self._abort(inst)
            return
        if op.kind is OpKind.LOCK:
            self._request_lock(inst, node)
        else:
            self.schedule(
                self.config.service_time,
                ("op_done", inst.index, node, inst.attempt),
            )

    def _on_begin(self, txn: int) -> None:
        self._inflight += 1
        self._issue_ready(self._instances[txn])

    def _on_issue(self, txn: int, node: int, attempt: int) -> None:
        """A cross-site coordination message arrived: issue the op."""
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return
        self._issue_one(inst, node)

    def _request_lock(self, inst: _Instance, node: int) -> None:
        op = self.system[inst.index].ops[node]
        site = self._site_for_entity(op.entity)
        if site.request(inst.index, op.entity):
            self.schedule(
                self.config.service_time,
                ("op_done", inst.index, node, inst.attempt),
            )
            return
        holder = site.holder(op.entity)
        assert holder is not None and holder != inst.index
        holder_inst = self._instances[holder]
        decision = self.policy.on_conflict(
            inst.timestamp, holder_inst.timestamp
        )
        if (
            decision is Decision.ABORT_HOLDER
            and holder_inst.status in (_PREPARED, _COMMITTED)
        ):
            # A prepared holder cannot be wounded: it already voted in
            # a commit round. A committed holder still has its release
            # message in flight and is just as unabortable. Block on
            # the decision's arrival instead.
            decision = Decision.WAIT_PREPARED
            self.result.prepared_blocks += 1
        if decision is Decision.ABORT_SELF:
            site.cancel_wait(inst.index, op.entity)
            self.result.deaths += 1
            self._abort(inst)
            return
        # The waiting decisions and ABORT_HOLDER all leave the
        # requester in the queue.
        inst.waiting[op.entity] = self._now
        self.result.waits += 1
        if decision is Decision.ABORT_HOLDER:
            self.result.wounds += 1
            self._abort(holder_inst)
            return
        if self.policy.uses_timeout:
            self.schedule(
                self.config.timeout,
                ("timeout", inst.index, node, inst.attempt),
            )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _on_grant(self, txn: int, entity: str) -> None:
        """A queued request of ``txn`` was granted by a release.

        Besides waking the new holder, the remaining waiters re-run the
        policy's conflict rule against the *new* holder: under
        wound-wait an old transaction must not linger behind a young one
        that just inherited the lock (it wounds it), and under wait-die
        a young waiter behind a newly-granted older holder dies. Without
        this re-evaluation the RSL schemes lose their deadlock-freedom
        guarantee.
        """
        inst = self._instances[txn]
        if inst.status != _RUNNING or entity not in inst.waiting:
            # Stale grant. Legitimate under abort cascades: a recursive
            # wound can abort the grantee (re-granting the entity) after
            # this grant was recorded but before it was delivered — in
            # that case the lock already moved on and there is nothing
            # to do. If the grantee still holds the lock, hand it back
            # rather than wedging the site.
            site = self._site_for_entity(entity)
            if site.holder(entity) != txn:
                return
            granted = site.release(txn, entity)
            if granted is not None:
                self._on_grant(granted, entity)
            return
        self.result.wait_time += self._now - inst.waiting.pop(entity)
        node = self.system[txn].lock_node(entity)
        self.schedule(
            self.config.service_time, ("op_done", txn, node, inst.attempt)
        )
        self._reevaluate_waiters(entity, inst)

    def _reevaluate_waiters(self, entity: str, holder: _Instance) -> None:
        site = self._site_for_entity(entity)
        for waiter in list(site.waiters(entity)):
            if holder.status != _RUNNING:
                return  # the holder was wounded; releases re-grant
            w_inst = self._instances[waiter]
            if w_inst.status != _RUNNING or entity not in w_inst.waiting:
                # The snapshot is stale: an earlier iteration's abort
                # cascade already removed this waiter from the queue.
                # It must neither die again (the abort would no-op but
                # the death counter would drift) nor wound the holder
                # on behalf of a conflict that no longer exists.
                continue
            decision = self.policy.on_conflict(
                w_inst.timestamp, holder.timestamp
            )
            if decision is Decision.ABORT_HOLDER:
                self.result.wounds += 1
                self._abort(holder)
                return
            if decision is Decision.ABORT_SELF:
                self.result.deaths += 1
                self._abort(w_inst)

    def _on_op_done(self, txn: int, node: int, attempt: int) -> None:
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return  # stale event from an aborted attempt
        t = self.system[txn]
        op = t.ops[node]
        inst.done |= 1 << node
        self._trace.append((self._now, self._trace_seq, txn, node, attempt))
        self._trace_seq += 1
        if op.kind is OpKind.UNLOCK:
            if self.commit.retains_locks:
                # Strict release-at-commit: the Unlock ends the lock's
                # logical scope, but the physical release rides on the
                # commit decision.
                inst.retained.add(op.entity)
            else:
                site = self._site_for_entity(op.entity)
                granted = site.release(txn, op.entity)
                if granted is not None:
                    self._on_grant(granted, op.entity)
        if inst.done == t.dag.all_nodes_mask():
            self.commit.on_execution_complete(inst)
        else:
            self._issue_ready(inst)

    def _abort(self, inst: _Instance) -> None:
        """Release everything, forget progress, schedule a restart."""
        if inst.status != _RUNNING:
            return
        inst.status = _ABORTED
        self.result.aborts += 1
        txn = inst.index
        for entity in list(inst.waiting):
            self._site_for_entity(entity).cancel_wait(txn, entity)
        inst.waiting.clear()
        for site in self._sites.values():
            for entity, granted in site.release_all(txn):
                if granted is not None:
                    self._on_grant(granted, entity)
        inst.done = 0
        inst.issued = 0
        inst.retained.clear()
        inst.exec_done_time = -1.0
        inst.prepared_since = -1.0
        inst.attempt += 1
        self.commit.on_abort(inst)
        delay = self.config.restart_delay + self._rng.uniform(
            0, self.config.restart_jitter
        )
        self.schedule(delay, ("restart", txn, inst.attempt))

    def _on_restart(self, txn: int, attempt: int) -> None:
        inst = self._instances[txn]
        if inst.status != _ABORTED or inst.attempt != attempt:
            return
        inst.status = _RUNNING
        self._issue_ready(inst)

    def _on_timeout(self, txn: int, node: int, attempt: int) -> None:
        inst = self._instances[txn]
        entity = self.system[txn].ops[node].entity
        if (
            inst.status == _RUNNING
            and inst.attempt == attempt
            and entity in inst.waiting
        ):
            self.result.timeouts += 1
            self._abort(inst)

    # ------------------------------------------------------------------
    # deadlock machinery
    # ------------------------------------------------------------------

    def _wait_for_edges(self) -> dict[int, set[int]]:
        """Waits-for graph: waiter -> holder, one edge per blocked
        request."""
        edges: dict[int, set[int]] = {}
        for inst in self._instances:
            if inst.status != _RUNNING:
                continue
            for entity in inst.waiting:
                holder = self._site_for_entity(entity).holder(entity)
                if holder is not None:
                    edges.setdefault(inst.index, set()).add(holder)
        return edges

    def _on_detect(self) -> None:
        edges = self._wait_for_edges()
        cycle = find_cycle(list(edges), lambda u: edges.get(u, ()))
        if cycle:
            victim = max(cycle, key=lambda i: self._instances[i].timestamp)
            self.result.detected += 1
            self._abort(self._instances[victim])
        # Reschedule only while another scan could matter. New cycles
        # form only when other events run, so once every remaining
        # event sits beyond max_time (or the queue is empty), further
        # scans are provably useless — the old behaviour padded the
        # queue with one no-op scan per interval up to the horizon.
        next_event = self._queue.peek_time()
        if (
            next_event is not None
            and next_event <= self.config.max_time
            and self._now + self.config.detection_interval
            <= self.config.max_time
            and self.has_uncommitted()
        ):
            self.schedule(self.config.detection_interval, ("detect",))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation and return its result record."""
        config = self.config
        for inst in self._instances:
            start = self._rng.uniform(0, config.arrival_spread)
            inst.timestamp = start
            inst.start_time = start
            self._queue.push(start, ("begin", inst.index))
        if self.policy.uses_detection:
            self._queue.push(config.detection_interval, ("detect",))

        while self._queue:
            time, payload = self._queue.pop()
            if time > config.max_time:
                self.result.truncated = True
                break
            if time > self._now:
                # Integrate the in-flight count over the steady-state
                # window; the mean concurrency level falls out of it.
                lo = max(self._now, config.warmup_time)
                if time > lo:
                    self.result.inflight_area += (
                        self._inflight * (time - lo)
                    )
            self._now = time
            self._events_processed += 1
            if self._events_processed > config.max_events:
                self.result.truncated = True
                break
            self._registry.dispatch(payload)
            if (
                self.failures is not None
                and not self.has_uncommitted()
                and not any(i.retained for i in self._instances)
            ):
                # All work committed and every retained lock released:
                # the only events left are future crash/recover pairs,
                # which would inflate end_time and the crash count (or
                # spuriously truncate the run at a tight horizon).
                break

        self.result.end_time = self._now
        if self.arrivals is not None:
            # The run is over; materialize the accumulated transactions
            # so trace replay sees a real (indexed) TransactionSystem.
            self.system = self.system.frozen()
        if self.result.committed < len(self.system):
            if not self._queue and not self.result.truncated:
                if self.policy.uses_detection:
                    # A detection run can only drain with work left
                    # when the scan chain stopped at the time budget —
                    # the next scan would have broken the wedge, so
                    # this is a truncation, not a permanent deadlock.
                    self.result.truncated = True
                else:
                    self.result.deadlocked = True
                    edges = self._wait_for_edges()
                    cycle = find_cycle(
                        list(edges), lambda u: edges.get(u, ())
                    )
                    if cycle:
                        self.result.deadlock_cycle = tuple(cycle)
        self.result.latencies = [
            (inst.commit_time - inst.start_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.exec_latencies = [
            (inst.exec_done_time - inst.start_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.commit_latencies = [
            (inst.commit_time - inst.exec_done_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.start_times = [
            inst.start_time for inst in self._instances
        ]
        self.result.serializable = self._check_serializability()
        return self.result

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------

    def _final_steps(self, committed_only: bool) -> list[GlobalNode]:
        steps = []
        for _time, _seq, txn, node, attempt in sorted(self._trace):
            inst = self._instances[txn]
            if committed_only and inst.status != _COMMITTED:
                continue
            if inst.status == _ABORTED:
                continue
            if attempt == inst.attempt:
                steps.append(GlobalNode(txn, node))
        return steps

    def _check_serializability(self) -> bool | None:
        """Replay the final attempts' operations as a Schedule and test
        D(S').

        Includes the partial progress of still-running transactions:
        their completed operations are part of the history too (this is
        what makes the Lemma 1 / D(S') connection exact at deadlocks).
        """
        try:
            schedule = Schedule(self.system, self._final_steps(False))
        except Exception:  # pragma: no cover - indicates a runtime bug
            return False
        return is_serializable(schedule)

    def committed_schedule(self) -> Schedule:
        """The committed trace as a validated Schedule."""
        return Schedule(self.system, self._final_steps(True))


def simulate(
    system: TransactionSystem,
    policy: Policy | str = "blocking",
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a Simulator and run it."""
    return Simulator(system, policy, config).run()


def find_deadlocking_seed(
    system: TransactionSystem,
    max_seeds: int = 200,
    config: SimulationConfig | None = None,
) -> tuple[int, SimulationResult] | None:
    """Search arrival orders for one that wedges the blocking scheduler.

    A cheap dynamic fuzzer: statically refuted systems usually wedge
    within a few seeds, while certified systems never do (the property
    tests rely on exactly that asymmetry).

    Args:
        system: the system to stress.
        max_seeds: how many seeds to try.
        config: base configuration; its seed field is overridden.

    Returns:
        ``(seed, result)`` for the first deadlocking run, or None.
    """
    base = config or SimulationConfig()
    for seed in range(max_seeds):
        result = simulate(
            system, "blocking", dataclasses.replace(base, seed=seed)
        )
        if result.deadlocked:
            return seed, result
    return None
