"""The distributed lock-scheduler simulator.

Executes a :class:`repro.core.TransactionSystem` as a discrete-event
simulation: every transaction is a client walking its partial order,
issuing each operation to the site of its entity once all predecessors
completed. Because transactions are partial orders, a client can have
several operations in flight at different sites — including several
blocked lock requests — which is exactly the distributed behaviour the
paper's model captures and centralized simulators miss.

Lock conflicts are resolved by the configured policy
(:mod:`repro.sim.policies`); aborted transactions release their locks
and restart from scratch after a delay, keeping their original
timestamp (so wound-wait and wait-die are livelock-free).

Four pluggable subsystems extend the core loop:

* atomic commit (:mod:`repro.sim.commit`) — decides when a transaction
  that finished executing is durably committed; the two-phase
  protocols retain locks through the PREPARED window and exchange
  coordinator/participant messages;
* fault injection (:mod:`repro.sim.failures`) — crashes and repairs
  sites, aborting the transactions whose volatile state they held;
* arrivals (:mod:`repro.sim.arrivals`) — turns the run into an *open
  system*: fresh transactions keep arriving on a Poisson clock
  (``arrival_rate``) until ``max_transactions`` or ``max_time``, and a
  warm-up window (``warmup_time``) restricts the steady-state metrics
  (throughput, in-flight concurrency, latency percentiles) to the
  post-transient regime;
* replica control (:mod:`repro.sim.replication`) — maps each logical
  entity to ``replication_factor`` replica sites and routes every Lock
  through the configured protocol (``rowa``, ``rowa-available``,
  ``quorum``): reads take *shared* locks on one replica or a read
  quorum, writes take *exclusive* locks on all/available/a quorum of
  replicas, and a Lock completes only when every chosen replica
  granted. At factor 1 every protocol degenerates to the single-copy
  simulator bit for bit.

The subsystems register their own event kinds on the runtime's
:class:`~repro.sim.events.HandlerRegistry`, so the main loop is a pure
dispatcher and never enumerates event types.

The committed operations form a trace that replays as a legal
:class:`repro.core.Schedule`; the runtime closes the loop with the
static theory by testing that trace for serializability with the same
D(S) machinery (or, when shared read locks are in play and the
exclusive-lock replay no longer applies, with the classical conflict
graph over the same lock-order data).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.core.operations import OpKind
from repro.core.schedule import Schedule
from repro.core.serialization import is_serializable
from repro.core.system import GlobalNode, TransactionSystem
from repro.core.transaction import Transaction
from repro.sim.arrivals import ArrivalProcess, OpenSystem
from repro.sim.commit import make_protocol
from repro.sim.events import EventQueue, HandlerRegistry
from repro.sim.failures import FailureInjector
from repro.sim.locks import EXCLUSIVE, SHARED, SiteLockManager
from repro.sim.metrics import SimulationResult
from repro.sim.policies import Decision, Policy, make_policy
from repro.sim.replication import ReplicaManager
from repro.sim.workload import WorkloadSpec
from repro.util.bitset import bits_of
from repro.util.graphs import find_cycle

__all__ = ["SimulationConfig", "Simulator", "simulate"]

_RUNNING = "running"
_PREPARED = "prepared"
_COMMITTED = "committed"
_ABORTED = "aborted"


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable parameters of a run.

    Attributes:
        service_time: simulated duration of one operation at a site.
        network_delay: extra latency charged when an operation depends
            on a predecessor that completed at a *different* site (the
            cross-site coordination message of the distributed model);
            also the per-hop cost of commit-protocol messages and of
            replica-lock fan-out to non-primary replicas.
        arrival_spread: transactions start uniformly in
            [0, arrival_spread].
        restart_delay: wait before an aborted transaction retries.
        restart_jitter: extra uniform jitter added to restarts (avoids
            lock-step retry storms).
        timeout: lock-wait deadline for the timeout policy.
        detection_interval: period of the wait-for-graph scan for the
            detection policy.
        commit_protocol: atomic-commit protocol name
            (``instant``, ``two-phase``, ``presumed-abort``).
        commit_timeout: retry/vote-collection period of the two-phase
            protocols.
        failure_rate: per-site crash rate (crashes per unit time);
            0 disables fault injection entirely.
        repair_time: mean downtime of a crashed site.
        replica_protocol: replica-control protocol name (``rowa``,
            ``rowa-available``, ``quorum``); the replication factor
            itself is a workload property
            (``WorkloadSpec.replication_factor``).
        catchup_time: period of the anti-entropy scan a recovering site
            runs under ``rowa-available`` — until the scan validates a
            copy (or a write refreshes it) the copy serves no reads.
        arrival_rate: open-system arrival rate (transactions per unit
            time); 0 (the default) disables the arrival process
            entirely, reproducing the closed-batch simulator.
        max_transactions: stop injecting after this many arrivals
            (0 = unbounded; ``max_time`` then limits the run).
        warmup_time: start of the steady-state measurement window;
            throughput, in-flight concurrency, and latency percentiles
            ignore everything before it.
        workload: spec the arrival process draws transactions from
            (defaults to ``WorkloadSpec()``); also carries the
            replication factor applied to the run's schema.
        workload_seed: seed of the arrival schema (and, in sweeps, of
            closed-batch workload generation) — kept separate from
            ``seed`` so replicates stress the same database.
        max_time: hard stop for the simulated clock.
        max_events: hard stop on processed events.
        seed: RNG seed (arrivals and jitter).
    """

    service_time: float = 1.0
    network_delay: float = 0.0
    arrival_spread: float = 2.0
    restart_delay: float = 4.0
    restart_jitter: float = 2.0
    timeout: float = 12.0
    detection_interval: float = 8.0
    commit_protocol: str = "instant"
    commit_timeout: float = 6.0
    failure_rate: float = 0.0
    repair_time: float = 10.0
    replica_protocol: str = "rowa"
    catchup_time: float = 6.0
    arrival_rate: float = 0.0
    max_transactions: int = 0
    warmup_time: float = 0.0
    workload: WorkloadSpec | None = None
    workload_seed: int = 0
    max_time: float = 100_000.0
    max_events: int = 1_000_000
    seed: int = 0


class _Instance:
    """Mutable execution state of one transaction."""

    __slots__ = (
        "index", "status", "timestamp", "attempt", "done", "issued",
        "waiting", "commit_time", "start_time", "exec_done_time",
        "prepared_since", "retained", "lock_sites", "pending_replicas",
    )

    def __init__(self, index: int):
        self.index = index
        self.status = _RUNNING
        self.timestamp = 0.0  # first-start time; kept across restarts
        self.attempt = 0
        self.done = 0  # bitmask of completed nodes
        self.issued = 0  # bitmask of issued nodes
        self.waiting: dict[tuple[str, str], float] = {}  # (entity, site)
        self.commit_time = -1.0
        self.start_time = 0.0
        self.exec_done_time = -1.0  # last operation's completion time
        self.prepared_since = -1.0  # entry into the PREPARED window
        self.retained: set[tuple[str, str]] = set()  # (entity, site)
        # entity -> replica sites this attempt locks (protocol choice)
        self.lock_sites: dict[str, tuple[str, ...]] = {}
        # entity -> replica sites whose grant is still outstanding
        self.pending_replicas: dict[str, set[str]] = {}


class Simulator:
    """One simulation run over a system, policy, and configuration."""

    def __init__(
        self,
        system: TransactionSystem,
        policy: Policy | str = "blocking",
        config: SimulationConfig | None = None,
    ):
        self.system: TransactionSystem | OpenSystem = system
        self.policy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self.config = config or SimulationConfig()
        self._rng = random.Random(self.config.seed)
        self._queue = EventQueue()
        self._registry = HandlerRegistry()
        self.arrivals: ArrivalProcess | None = None
        if self.config.arrival_rate > 0:
            # Open system: wrap the (possibly empty) closed batch in a
            # growable view over the merged batch + arrival schema.
            self.arrivals = ArrivalProcess(self)
            self.system = OpenSystem(
                system.transactions,
                system.schema.merged_with(self.arrivals.schema),
            )
        # Sorted site order: _abort releases locks site by site, so the
        # iteration order is behaviour, not presentation — building the
        # table from the schema's frozenset would leak the process hash
        # seed into grant order and break run-level determinism.
        self._sites = {
            site: SiteLockManager(site)
            for site in sorted(self.system.schema.sites)
        }
        self._instances = [_Instance(i) for i in range(len(self.system))]
        self._now = 0.0
        self._events_processed = 0
        self._inflight = 0
        self._trace: list[tuple[float, int, int, int, int]] = []
        self._trace_seq = 0
        self.result = SimulationResult(
            policy=self.policy.name,
            commit_protocol=self.config.commit_protocol,
            replica_protocol=self.config.replica_protocol,
            total=len(self.system),
            warmup_time=self.config.warmup_time,
        )
        self.replicas = ReplicaManager(self)
        self.result.replication_factor = (
            self.replicas.schema.replication_factor
        )
        self._register_core_handlers()
        self.commit = make_protocol(self.config.commit_protocol)
        self.commit.attach(self)
        self.failures: FailureInjector | None = None
        if self.config.failure_rate > 0:
            self.failures = FailureInjector(self)
            self.failures.attach()
        if self.arrivals is not None:
            self.arrivals.attach()

    def _register_core_handlers(self) -> None:
        reg = self._registry
        reg.register("begin", self._on_begin)
        reg.register("issue", self._on_issue)
        reg.register("replica_req", self._on_replica_req)
        reg.register("op_done", self._on_op_done)
        reg.register("restart", self._on_restart)
        reg.register("timeout", self._on_timeout)
        reg.register("detect", self._on_detect)

    # ------------------------------------------------------------------
    # subsystem surface (commit protocols, failure injection)
    # ------------------------------------------------------------------

    def register_handler(self, kind: str, handler) -> None:
        """Claim an event kind for a subsystem handler."""
        self._registry.register(kind, handler)

    def schedule(self, delay: float, payload: tuple) -> None:
        """Schedule ``payload`` at ``now + delay``."""
        self._queue.push(self._now + delay, payload)

    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    def instance(self, txn: int) -> _Instance:
        """The mutable state of transaction ``txn``."""
        return self._instances[txn]

    def add_transaction(self, txn: Transaction) -> int:
        """Inject ``txn`` into the running open system, starting now.

        Only valid in open-system mode (the arrival process is the
        caller); the new client's timestamp is its arrival time, so the
        RSL policies' age comparisons extend naturally to arrivals.
        """
        index = self.system.append(txn)
        inst = _Instance(index)
        inst.timestamp = self._now
        inst.start_time = self._now
        self._instances.append(inst)
        self.result.total += 1
        self.result.injected += 1
        self._inflight += 1
        self._issue_ready(inst)
        return index

    def lock_tables(self) -> dict[str, SiteLockManager]:
        """The per-site lock tables, keyed by site name."""
        return dict(self._sites)

    def site_names(self) -> list[str]:
        """All site names, sorted."""
        return sorted(self._sites)

    def site_is_up(self, site: str) -> bool:
        """Whether ``site`` is up (always True without fault
        injection)."""
        return self.failures is None or self.failures.site_up(site)

    def has_uncommitted(self) -> bool:
        """Whether any transaction has not committed yet.

        While the arrival process is still injecting, more work is
        always coming, so the answer is True even if every transaction
        injected so far has committed — subsystem upkeep loops (crash
        scheduling, detection scans) must not stop between arrivals.
        """
        if self.arrivals is not None and not self.arrivals.finished:
            return True
        return self.result.committed < len(self.system)

    def transaction_sites(self, txn: int) -> tuple[str, list[str]]:
        """``(coordinator, participants)`` of a commit round.

        The coordinator is the first replica site the attempt locked
        for its first operation's entity — the primary whenever the
        primary is up, and an up replica the protocol routed to when it
        is not (a crashed primary must not coordinate a round it never
        participated in). The participants are every replica site the
        attempt actually locked — under replication that enlists every
        write-replica (and read-quorum) site in the commit round.
        """
        t = self.system[txn]
        inst = self._instances[txn]
        first_entity = t.ops[0].entity
        lock_sites = inst.lock_sites.get(first_entity)
        coordinator = (
            lock_sites[0]
            if lock_sites
            else self.replicas.primary_of(first_entity)
        )
        participants = sorted({
            site
            for sites in inst.lock_sites.values()
            for site in sites
        })
        return coordinator, participants

    def mark_prepared(self, inst: _Instance) -> None:
        """Enter the PREPARED window: unabortable, locks retained."""
        inst.status = _PREPARED
        inst.exec_done_time = self._now
        inst.prepared_since = self._now

    def finish_commit(self, inst: _Instance) -> None:
        """Commit the transaction at the current time."""
        if inst.exec_done_time < 0:
            inst.exec_done_time = self._now
        inst.status = _COMMITTED
        inst.commit_time = self._now
        self.result.committed += 1
        self._inflight -= 1
        if self._now >= self.config.warmup_time:
            self.result.measured_committed += 1
        self.replicas.on_commit(inst)

    def abort_from_commit(self, inst: _Instance) -> None:
        """Abort a PREPARED transaction whose commit round failed."""
        if inst.status != _PREPARED:
            return
        self.result.commit_aborts += 1
        self.release_retained(inst)
        inst.status = _RUNNING  # re-enter the abortable state
        inst.prepared_since = -1.0
        self._abort(inst)

    def release_retained(
        self, inst: _Instance, site_name: str | None = None
    ) -> None:
        """Release locks retained past their Unlock operation.

        Restricted to one site when ``site_name`` is given (a commit
        decision arriving at that participant). Waiters blocked behind
        the retained lock have the prepared portion of their wait
        charged to ``prepared_block_time``.
        """
        for entity, held_at in sorted(inst.retained):
            if site_name is not None and held_at != site_name:
                continue
            inst.retained.discard((entity, held_at))
            site = self._sites[held_at]
            if inst.index not in site.holders(entity):
                continue  # defensive: already force-released
            if inst.prepared_since >= 0:
                for waiter in site.waiters(entity):
                    begun = self._instances[waiter].waiting.get(
                        (entity, held_at)
                    )
                    if begun is not None:
                        self.result.prepared_block_time += (
                            self._now - max(begun, inst.prepared_since)
                        )
            for granted in site.release(inst.index, entity):
                self._on_grant(granted, entity, held_at)

    def crash_site(self, site_name: str) -> None:
        """Abort every RUNNING transaction with lock state at the site.

        PREPARED transactions survive: their locks are conceptually on
        the write-ahead log and stay retained across the crash.
        Waiters go first so that releasing the holders' locks does not
        grant work to a site that is down.
        """
        site = self._sites[site_name]
        txns = site.involved()
        waiters = [t for t in txns if site.waiting_for(t)]
        waiter_set = set(waiters)
        holders = [t for t in txns if t not in waiter_set]
        for txn in waiters + holders:
            inst = self._instances[txn]
            if inst.status == _RUNNING:
                self.result.crash_aborts += 1
                self._abort(inst)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _site_for_entity(self, entity: str) -> SiteLockManager:
        """The lock table of the entity's *primary* replica."""
        return self._sites[self.system.schema.site_of(entity)]

    def _ready_nodes(self, inst: _Instance) -> list[int]:
        t = self.system[inst.index]
        pending = t.dag.all_nodes_mask() & ~inst.issued
        return [
            u
            for u in bits_of(pending)
            if t.dag.ancestors(u) & ~inst.done == 0
        ]

    # ------------------------------------------------------------------
    # issuing operations
    # ------------------------------------------------------------------

    def _cross_site_delay(self, txn: int, node: int) -> float:
        """Network latency when a direct predecessor ran at another
        site."""
        if self.config.network_delay <= 0:
            return 0.0
        t = self.system[txn]
        site = self.system.schema.site_of(t.ops[node].entity)
        for pred in bits_of(t.dag.predecessors(node)):
            pred_site = self.system.schema.site_of(t.ops[pred].entity)
            if pred_site != site:
                return self.config.network_delay
        return 0.0

    def _issue_ready(self, inst: _Instance) -> None:
        if inst.status != _RUNNING:
            return
        for node in self._ready_nodes(inst):
            inst.issued |= 1 << node
            delay = self._cross_site_delay(inst.index, node)
            if delay > 0:
                self.schedule(
                    delay, ("issue", inst.index, node, inst.attempt)
                )
                continue
            self._issue_one(inst, node)
            if inst.status != _RUNNING:
                return  # the request aborted us (wait-die)

    def _issue_one(self, inst: _Instance, node: int) -> None:
        op = self.system[inst.index].ops[node]
        if op.kind is OpKind.LOCK:
            # The replica-control protocol owns the up/down routing for
            # lock acquisition (at factor 1 it degenerates to the
            # single-site availability check below).
            self._request_lock(inst, node)
            return
        # Actions and Unlocks execute at the replica sites the attempt
        # actually locked — not necessarily the primary, which the
        # available protocols deliberately route around when it is
        # down. At factor 1 the lock site *is* the primary, preserving
        # the seed behaviour bit for bit.
        sites = inst.lock_sites.get(
            op.entity, (self.system.schema.site_of(op.entity),)
        )
        if not all(self.site_is_up(site) for site in sites):
            # An operation site is down; the transaction's volatile
            # state is lost with it.
            self.result.crash_aborts += 1
            self._abort(inst)
            return
        self.schedule(
            self.config.service_time,
            ("op_done", inst.index, node, inst.attempt),
        )

    def _on_begin(self, txn: int) -> None:
        self._inflight += 1
        self._issue_ready(self._instances[txn])

    def _on_issue(self, txn: int, node: int, attempt: int) -> None:
        """A cross-site coordination message arrived: issue the op."""
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return
        self._issue_one(inst, node)

    def _lock_mode(self, txn: int, entity: str) -> str:
        return SHARED if entity in self.system[txn].read_set else EXCLUSIVE

    def _request_lock(self, inst: _Instance, node: int) -> None:
        """Issue a Lock: fan out to the protocol's replica choice.

        The chosen replica sites are locked in parallel — shared mode
        for reads, exclusive for writes — and the Lock operation
        completes (one ``service_time`` later) once every replica
        granted. Fan-out to a non-primary replica costs one
        ``network_delay`` hop.
        """
        entity = self.system[inst.index].ops[node].entity
        mode = self._lock_mode(inst.index, entity)
        sites = (
            self.replicas.read_sites(entity)
            if mode == SHARED
            else self.replicas.write_sites(entity)
        )
        if sites is None:
            # No legal replica set right now: under rowa a single
            # crashed replica blocks writes, under quorum a lost
            # majority blocks everything. The access fails exactly like
            # an issue to a down site.
            self.result.crash_aborts += 1
            self.result.unavailable_aborts += 1
            self._abort(inst)
            return
        inst.lock_sites[entity] = sites
        inst.pending_replicas[entity] = set(sites)
        primary = self.replicas.primary_of(entity)
        for site_name in sites:
            if site_name != primary and self.config.network_delay > 0:
                self.schedule(
                    self.config.network_delay,
                    ("replica_req", inst.index, node, site_name,
                     inst.attempt),
                )
                continue
            self._request_replica(inst, node, site_name, mode)
            if inst.status != _RUNNING:
                return  # the request aborted us (wait-die)
        self._maybe_complete_lock(inst, node, entity)

    def _on_replica_req(
        self, txn: int, node: int, site_name: str, attempt: int
    ) -> None:
        """A replica-lock fan-out message arrived at a remote replica."""
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return
        entity = self.system[txn].ops[node].entity
        if not self.site_is_up(site_name):
            # The replica crashed while the request was in flight.
            self.result.crash_aborts += 1
            self._abort(inst)
            return
        self._request_replica(
            inst, node, site_name, self._lock_mode(txn, entity)
        )
        if inst.status != _RUNNING:
            return
        self._maybe_complete_lock(inst, node, entity)

    def _request_replica(
        self, inst: _Instance, node: int, site_name: str, mode: str
    ) -> None:
        """Request one replica's lock and resolve any conflict."""
        entity = self.system[inst.index].ops[node].entity
        site = self._sites[site_name]
        if site.request(inst.index, entity, mode):
            pending = inst.pending_replicas.get(entity)
            if pending is not None:
                pending.discard(site_name)
            return
        holders = site.holders(entity)
        assert holders and inst.index not in holders
        if mode == SHARED and site.mode(entity) == SHARED:
            # Compatible with every holder: the block is the FIFO queue
            # itself (a writer ahead). The policy must order the
            # requester against those *conflicting queued* waiters
            # instead — leaving the edge unordered would let an old
            # reader wait behind a young writer forever, breaking the
            # prevention schemes' acyclicity argument.
            blockers = self._conflicting_ahead(site, entity, inst.index)
        else:
            blockers = holders
        decisions: list[tuple[_Instance, Decision]] = []
        prepared_counted = False
        for holder in blockers:
            holder_inst = self._instances[holder]
            decision = self.policy.on_conflict(
                inst.timestamp, holder_inst.timestamp
            )
            if (
                decision is Decision.ABORT_HOLDER
                and holder_inst.status in (_PREPARED, _COMMITTED)
            ):
                # A prepared holder cannot be wounded: it already voted
                # in a commit round. A committed holder still has its
                # release message in flight and is just as unabortable.
                # Block on the decision's arrival instead (one blocked
                # request counts once, however many holders prepared).
                decision = Decision.WAIT_PREPARED
                if not prepared_counted:
                    self.result.prepared_blocks += 1
                    prepared_counted = True
            if decision is Decision.ABORT_SELF:
                granted = site.cancel_wait(inst.index, entity)
                self.result.deaths += 1
                self._abort(inst)
                for grantee in granted:
                    self._on_grant(grantee, entity, site_name)
                return
            decisions.append((holder_inst, decision))
        # The waiting decisions and ABORT_HOLDER all leave the
        # requester in the queue.
        inst.waiting[(entity, site_name)] = self._now
        self.result.waits += 1
        wounded = [
            h for h, d in decisions if d is Decision.ABORT_HOLDER
        ]
        if wounded:
            for holder_inst in wounded:
                if holder_inst.status != _RUNNING:
                    continue  # an earlier wound's cascade got it first
                self.result.wounds += 1
                self._abort(holder_inst)
            return
        if self.policy.uses_timeout:
            self.schedule(
                self.config.timeout,
                ("timeout", inst.index, node, inst.attempt),
            )

    def _conflicting_ahead(
        self, site: SiteLockManager, entity: str, txn: int
    ) -> list[int]:
        """Queued waiters ahead of ``txn`` whose mode conflicts with a
        shared request (i.e. the writers it is queued behind)."""
        ahead = []
        for waiter in site.waiters(entity):
            if waiter == txn:
                break
            if site.queued_mode(entity, waiter) == EXCLUSIVE:
                ahead.append(waiter)
        return ahead

    def _maybe_complete_lock(
        self, inst: _Instance, node: int, entity: str
    ) -> None:
        """Schedule op_done once every chosen replica has granted."""
        pending = inst.pending_replicas.get(entity)
        if pending is None or pending:
            return
        del inst.pending_replicas[entity]
        self.schedule(
            self.config.service_time,
            ("op_done", inst.index, node, inst.attempt),
        )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _on_grant(self, txn: int, entity: str, site_name: str) -> None:
        """A queued request of ``txn`` was granted by a release.

        Besides waking the new holder, the remaining waiters re-run the
        policy's conflict rule against the *new* holder: under
        wound-wait an old transaction must not linger behind a young one
        that just inherited the lock (it wounds it), and under wait-die
        a young waiter behind a newly-granted older holder dies. Without
        this re-evaluation the RSL schemes lose their deadlock-freedom
        guarantee.
        """
        inst = self._instances[txn]
        key = (entity, site_name)
        if inst.status != _RUNNING or key not in inst.waiting:
            # Stale grant. Legitimate under abort cascades: a recursive
            # wound can abort the grantee (re-granting the entity) after
            # this grant was recorded but before it was delivered — in
            # that case the lock already moved on and there is nothing
            # to do. If the grantee still holds the lock, hand it back
            # rather than wedging the site.
            site = self._sites[site_name]
            if txn not in site.holders(entity):
                return
            for granted in site.release(txn, entity):
                self._on_grant(granted, entity, site_name)
            return
        self.result.wait_time += self._now - inst.waiting.pop(key)
        pending = inst.pending_replicas.get(entity)
        if pending is not None:
            pending.discard(site_name)
        node = self.system[txn].lock_node(entity)
        self._maybe_complete_lock(inst, node, entity)
        self._reevaluate_waiters(entity, site_name, inst)

    def _reevaluate_waiters(
        self, entity: str, site_name: str, holder: _Instance
    ) -> None:
        site = self._sites[site_name]
        for waiter in list(site.waiters(entity)):
            if holder.status != _RUNNING:
                return  # the holder was wounded; releases re-grant
            w_inst = self._instances[waiter]
            if (
                w_inst.status != _RUNNING
                or (entity, site_name) not in w_inst.waiting
            ):
                # The snapshot is stale: an earlier iteration's abort
                # cascade already removed this waiter from the queue.
                # It must neither die again (the abort would no-op but
                # the death counter would drift) nor wound the holder
                # on behalf of a conflict that no longer exists.
                continue
            if (
                site.mode(entity) == SHARED
                and site.queued_mode(entity, waiter) == SHARED
            ):
                # A shared waiter behind the new shared holders has no
                # conflict with them — but it is still queued behind
                # conflicting writers, and that edge must be ordered
                # now that the holder set changed (an old reader stuck
                # behind young writers would otherwise wedge).
                self._order_shared_waiter(w_inst, entity, site_name)
                continue
            decision = self.policy.on_conflict(
                w_inst.timestamp, holder.timestamp
            )
            if decision is Decision.ABORT_HOLDER:
                self.result.wounds += 1
                self._abort(holder)
                return
            if decision is Decision.ABORT_SELF:
                self.result.deaths += 1
                self._abort(w_inst)

    def _order_shared_waiter(
        self, w_inst: _Instance, entity: str, site_name: str
    ) -> None:
        """Re-run the policy for a shared waiter against the queued
        writers ahead of it (its actual blockers)."""
        site = self._sites[site_name]
        for blocker in self._conflicting_ahead(
            site, entity, w_inst.index
        ):
            if (
                w_inst.status != _RUNNING
                or (entity, site_name) not in w_inst.waiting
            ):
                return  # a wound cascade granted or killed the waiter
            b_inst = self._instances[blocker]
            if b_inst.status != _RUNNING:
                continue
            decision = self.policy.on_conflict(
                w_inst.timestamp, b_inst.timestamp
            )
            if decision is Decision.ABORT_HOLDER:
                self.result.wounds += 1
                self._abort(b_inst)
            elif decision is Decision.ABORT_SELF:
                self.result.deaths += 1
                self._abort(w_inst)
                return

    def _on_op_done(self, txn: int, node: int, attempt: int) -> None:
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return  # stale event from an aborted attempt
        t = self.system[txn]
        op = t.ops[node]
        inst.done |= 1 << node
        self._trace.append((self._now, self._trace_seq, txn, node, attempt))
        self._trace_seq += 1
        if op.kind is OpKind.UNLOCK:
            lock_sites = inst.lock_sites[op.entity]
            if self.commit.retains_locks:
                # Strict release-at-commit: the Unlock ends the lock's
                # logical scope, but the physical release rides on the
                # commit decision.
                for site_name in lock_sites:
                    inst.retained.add((op.entity, site_name))
            else:
                for site_name in lock_sites:
                    site = self._sites[site_name]
                    for granted in site.release(txn, op.entity):
                        self._on_grant(granted, op.entity, site_name)
        if inst.done == t.dag.all_nodes_mask():
            self.commit.on_execution_complete(inst)
        else:
            self._issue_ready(inst)

    def _abort(self, inst: _Instance) -> None:
        """Release everything, forget progress, schedule a restart."""
        if inst.status != _RUNNING:
            return
        inst.status = _ABORTED
        self.result.aborts += 1
        txn = inst.index
        for entity, site_name in list(inst.waiting):
            # Cancelling a queued writer can expose a compatible read
            # batch behind it; those grants must be delivered.
            for grantee in self._sites[site_name].cancel_wait(txn, entity):
                self._on_grant(grantee, entity, site_name)
        inst.waiting.clear()
        for site in self._sites.values():
            for entity, granted in site.release_all(txn):
                for grantee in granted:
                    self._on_grant(grantee, entity, site.site)
        inst.done = 0
        inst.issued = 0
        inst.retained.clear()
        inst.lock_sites.clear()
        inst.pending_replicas.clear()
        inst.exec_done_time = -1.0
        inst.prepared_since = -1.0
        inst.attempt += 1
        self.commit.on_abort(inst)
        delay = self.config.restart_delay + self._rng.uniform(
            0, self.config.restart_jitter
        )
        self.schedule(delay, ("restart", txn, inst.attempt))

    def _on_restart(self, txn: int, attempt: int) -> None:
        inst = self._instances[txn]
        if inst.status != _ABORTED or inst.attempt != attempt:
            return
        inst.status = _RUNNING
        self._issue_ready(inst)

    def _on_timeout(self, txn: int, node: int, attempt: int) -> None:
        inst = self._instances[txn]
        entity = self.system[txn].ops[node].entity
        if (
            inst.status == _RUNNING
            and inst.attempt == attempt
            and any(key[0] == entity for key in inst.waiting)
        ):
            self.result.timeouts += 1
            self._abort(inst)

    # ------------------------------------------------------------------
    # deadlock machinery
    # ------------------------------------------------------------------

    def _wait_for_edges(self) -> dict[int, set[int]]:
        """Waits-for graph: waiter -> holder, one edge per blocked
        request."""
        edges: dict[int, set[int]] = {}
        for inst in self._instances:
            if inst.status != _RUNNING:
                continue
            for entity, site_name in inst.waiting:
                for holder in self._sites[site_name].holders(entity):
                    edges.setdefault(inst.index, set()).add(holder)
        return edges

    def _on_detect(self) -> None:
        edges = self._wait_for_edges()
        cycle = find_cycle(list(edges), lambda u: edges.get(u, ()))
        if cycle:
            victim = max(cycle, key=lambda i: self._instances[i].timestamp)
            self.result.detected += 1
            self._abort(self._instances[victim])
        # Reschedule only while another scan could matter. New cycles
        # form only when other events run, so once every remaining
        # event sits beyond max_time (or the queue is empty), further
        # scans are provably useless — the old behaviour padded the
        # queue with one no-op scan per interval up to the horizon.
        next_event = self._queue.peek_time()
        if (
            next_event is not None
            and next_event <= self.config.max_time
            and self._now + self.config.detection_interval
            <= self.config.max_time
            and self.has_uncommitted()
        ):
            self.schedule(self.config.detection_interval, ("detect",))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation and return its result record."""
        config = self.config
        for inst in self._instances:
            start = self._rng.uniform(0, config.arrival_spread)
            inst.timestamp = start
            inst.start_time = start
            self._queue.push(start, ("begin", inst.index))
        if self.policy.uses_detection:
            self._queue.push(config.detection_interval, ("detect",))

        while self._queue:
            time, payload = self._queue.pop()
            if time > config.max_time:
                self.result.truncated = True
                break
            if time > self._now:
                # Integrate the in-flight count over the steady-state
                # window; the mean concurrency level falls out of it.
                lo = max(self._now, config.warmup_time)
                if time > lo:
                    self.result.inflight_area += (
                        self._inflight * (time - lo)
                    )
            self._now = time
            self._events_processed += 1
            if self._events_processed > config.max_events:
                self.result.truncated = True
                break
            self._registry.dispatch(payload)
            if (
                self.failures is not None
                and not self.has_uncommitted()
                and not any(i.retained for i in self._instances)
            ):
                # All work committed and every retained lock released:
                # the only events left are future crash/recover pairs,
                # which would inflate end_time and the crash count (or
                # spuriously truncate the run at a tight horizon).
                break

        self.result.end_time = self._now
        self.replicas.finalize()
        if self.arrivals is not None:
            # The run is over; materialize the accumulated transactions
            # so trace replay sees a real (indexed) TransactionSystem.
            self.system = self.system.frozen()
        if self.result.committed < len(self.system):
            if not self._queue and not self.result.truncated:
                if self.policy.uses_detection:
                    # A detection run can only drain with work left
                    # when the scan chain stopped at the time budget —
                    # the next scan would have broken the wedge, so
                    # this is a truncation, not a permanent deadlock.
                    self.result.truncated = True
                else:
                    self.result.deadlocked = True
                    edges = self._wait_for_edges()
                    cycle = find_cycle(
                        list(edges), lambda u: edges.get(u, ())
                    )
                    if cycle:
                        self.result.deadlock_cycle = tuple(cycle)
        self.result.latencies = [
            (inst.commit_time - inst.start_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.exec_latencies = [
            (inst.exec_done_time - inst.start_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.commit_latencies = [
            (inst.commit_time - inst.exec_done_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.start_times = [
            inst.start_time for inst in self._instances
        ]
        self.result.serializable = self._check_serializability()
        return self.result

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------

    def _final_steps(self, committed_only: bool) -> list[GlobalNode]:
        steps = []
        for _time, _seq, txn, node, attempt in sorted(self._trace):
            inst = self._instances[txn]
            if committed_only and inst.status != _COMMITTED:
                continue
            if inst.status == _ABORTED:
                continue
            if attempt == inst.attempt:
                steps.append(GlobalNode(txn, node))
        return steps

    def _check_serializability(self) -> bool | None:
        """Replay the final attempts' operations as a Schedule and test
        D(S').

        Includes the partial progress of still-running transactions:
        their completed operations are part of the history too (this is
        what makes the Lemma 1 / D(S') connection exact at deadlocks).

        Shared read locks allow concurrent holders, so read/write
        traces are not legal schedules of the exclusive-lock model;
        those runs are tested with the classical conflict graph over
        the same lock-acquisition orders instead.
        """
        if any(t.read_set for t in self.system):
            return self._check_conflict_serializability()
        try:
            schedule = Schedule(self.system, self._final_steps(False))
        except Exception:  # pragma: no cover - indicates a runtime bug
            return False
        return is_serializable(schedule)

    def _check_conflict_serializability(self) -> bool:
        """Acyclicity of the conflict graph of the final trace.

        Two accesses of one entity conflict unless both are reads;
        conflicting accesses are ordered by lock-acquisition order
        (concurrent shared holders are unordered *and* non-conflicting,
        so any serial order works for them).
        """
        sequences: dict[str, list[int]] = {}
        for gnode in self._final_steps(False):
            op = self.system[gnode.txn].ops[gnode.node]
            if op.kind is OpKind.LOCK:
                sequences.setdefault(op.entity, []).append(gnode.txn)
        edges: dict[int, set[int]] = {}
        for entity, order in sequences.items():
            for i, first in enumerate(order):
                first_reads = entity in self.system[first].read_set
                for later in order[i + 1:]:
                    if later == first:
                        continue
                    if first_reads and entity in self.system[later].read_set:
                        continue
                    edges.setdefault(first, set()).add(later)
        return find_cycle(list(edges), lambda u: edges.get(u, ())) is None

    def committed_schedule(self) -> Schedule:
        """The committed trace as a validated Schedule.

        Only meaningful for all-exclusive workloads: shared read locks
        permit interleavings the exclusive-lock Schedule validation
        rejects.
        """
        return Schedule(self.system, self._final_steps(True))


def simulate(
    system: TransactionSystem,
    policy: Policy | str = "blocking",
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a Simulator and run it."""
    return Simulator(system, policy, config).run()


def find_deadlocking_seed(
    system: TransactionSystem,
    max_seeds: int = 200,
    config: SimulationConfig | None = None,
) -> tuple[int, SimulationResult] | None:
    """Search arrival orders for one that wedges the blocking scheduler.

    A cheap dynamic fuzzer: statically refuted systems usually wedge
    within a few seeds, while certified systems never do (the property
    tests rely on exactly that asymmetry).

    Args:
        system: the system to stress.
        max_seeds: how many seeds to try.
        config: base configuration; its seed field is overridden.

    Returns:
        ``(seed, result)`` for the first deadlocking run, or None.
    """
    base = config or SimulationConfig()
    for seed in range(max_seeds):
        result = simulate(
            system, "blocking", dataclasses.replace(base, seed=seed)
        )
        if result.deadlocked:
            return seed, result
    return None
