"""The network chaos model: loss, duplication, jitter, partitions.

:class:`NetworkModel` attaches by *interposition only*, exactly like
the observability layer: it shadows :meth:`Simulator.transmit` (the
cross-site message seam) and :meth:`Simulator.suspect_down` (the
failure-suspicion seam) on the simulator instance and registers its
own event kinds — ``net_deliver``/``net_redeliver`` (message copies in
flight), ``net_ack``, ``net_retransmit`` (the backoff timer chain),
and ``net_partition_start``/``net_partition_stop`` (episode edges).
With ``SimulationConfig.network`` unset nothing attaches and the
simulator runs the exact perfect-network instruction stream.

Chaos draws come from a dedicated ``random.Random`` stream derived
from the run seed (the same independent-stream pattern the
``FailureInjector`` uses), so enabling chaos never perturbs arrival
times, restart jitter, or crash schedules — and a chaos-off config is
bit-for-bit the seed behaviour, which the golden matrix pins.

Partition semantics: at most one episode is active at a time; the
site set is split into two sides and every message copy whose source
and destination fall on opposite sides is dropped at delivery time
(in-flight copies are cut too — a partition that starts mid-flight
eats the packet). Partitioned sites stay *up*: they are never marked
crashed, their lock tables keep serving local work, and only
:meth:`Simulator.suspect_down` — timeout-based suspicion from ack
ages — lets protocols route around them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.network.retransmit import RetransmitChannel

__all__ = ["NetworkConfig", "NetworkModel"]

#: seed-derivation constant of the chaos stream (the failure injector
#: uses 0x5EED; distinct constants keep the streams independent).
_CHAOS_SALT = 0xC4A05


@dataclass(frozen=True)
class NetworkConfig:
    """Adversarial-network parameters of a run.

    Attributes:
        loss_rate: i.i.d. probability that a message copy is dropped
            in flight (each copy — original, retransmission, duplicate,
            ack — draws independently).
        dup_rate: probability that a delivered message is spontaneously
            duplicated by the network; the extra copy is suppressed by
            the receiver's sequence-number dedup and counted in
            ``net_duplicates``.
        jitter: per-copy delay jitter, uniform in ``[0, jitter]``,
            added on top of the configured link delay.
        partition_rate: Poisson arrival rate of partition episodes
            (0 disables random partitions).
        partition_duration: duration of each Poisson-arriving episode.
        partition_schedule: scripted episodes, a tuple of
            ``(start, duration, side)`` entries where ``side`` is the
            tuple of site *names* on one side of the cut (the other
            side is the complement). Scripted and Poisson episodes can
            be combined; overlapping starts are skipped (one cut at a
            time).
        retransmit_timeout: first retransmission deadline of an
            unacked message.
        retransmit_backoff: multiplicative backoff factor applied to
            each successive retransmission interval (>= 1).
        retransmit_cap: upper bound on the backoff interval.
        suspect_timeout: failure-suspicion threshold — a site whose
            oldest unacked message has waited longer than this is
            *suspected* by :meth:`Simulator.suspect_down`.
    """

    loss_rate: float = 0.0
    dup_rate: float = 0.0
    jitter: float = 0.0
    partition_rate: float = 0.0
    partition_duration: float = 20.0
    partition_schedule: tuple = ()
    retransmit_timeout: float = 2.0
    retransmit_backoff: float = 2.0
    retransmit_cap: float = 16.0
    suspect_timeout: float = 8.0

    def __post_init__(self) -> None:
        for label, value in (
            ("loss_rate", self.loss_rate),
            ("dup_rate", self.dup_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        for label, value in (
            ("jitter", self.jitter),
            ("partition_rate", self.partition_rate),
            ("partition_duration", self.partition_duration),
        ):
            if value < 0:
                raise ValueError(f"{label} must be >= 0, got {value}")
        for label, value in (
            ("retransmit_timeout", self.retransmit_timeout),
            ("retransmit_cap", self.retransmit_cap),
            ("suspect_timeout", self.suspect_timeout),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be > 0, got {value}")
        if self.retransmit_backoff < 1.0:
            raise ValueError(
                f"retransmit_backoff must be >= 1, "
                f"got {self.retransmit_backoff}"
            )
        normalized = []
        for entry in self.partition_schedule:
            start, duration, side = entry
            if start < 0 or duration <= 0:
                raise ValueError(
                    f"partition episode needs start >= 0 and duration > 0, "
                    f"got ({start}, {duration})"
                )
            if not side:
                raise ValueError("partition side must name at least one site")
            normalized.append((float(start), float(duration), tuple(side)))
        object.__setattr__(self, "partition_schedule", tuple(normalized))

    @property
    def partitions_possible(self) -> bool:
        """Whether any partition episode can occur in this config."""
        return self.partition_rate > 0 or bool(self.partition_schedule)

    @property
    def enabled(self) -> bool:
        """Whether this config perturbs the network at all."""
        return (
            self.loss_rate > 0
            or self.dup_rate > 0
            or self.jitter > 0
            or self.partitions_possible
        )


class NetworkModel:
    """Chaos interposition on the simulator's message seam."""

    def __init__(self, sim):
        self.sim = sim
        self.config: NetworkConfig = sim.config.network
        # Dedicated chaos stream: an independent derivation of the run
        # seed, so chaos draws never perturb the main RNG and the
        # chaos-off config replays the seed behaviour bit for bit.
        self.rng = random.Random(
            (sim.config.seed + 1) * 1_000_003 + _CHAOS_SALT
        )
        self.channel = RetransmitChannel(self)
        #: sids on side A of the active cut (side B is the complement);
        #: None while the network is whole.
        self.cut: frozenset | None = None
        self._cut_since = 0.0
        self._episodes: list[tuple[float, float, frozenset]] = []

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach(self) -> None:
        sim = self.sim
        channel = self.channel
        sim.register_handler("net_deliver", channel.on_deliver)
        sim.register_handler("net_redeliver", channel.on_redeliver)
        sim.register_handler("net_ack", channel.on_ack)
        sim.register_handler("net_retransmit", channel.on_retransmit)
        sim.register_handler("net_partition_start", self._on_partition_start)
        sim.register_handler("net_partition_stop", self._on_partition_stop)
        # Interpose on the message and suspicion seams. ``schedule`` is
        # looked up at call time inside both, so the ObserverHub's
        # sched-probe shadow (attached later) still sees every enqueue.
        sim.transmit = self._transmit
        sim.suspect_down = self._suspect_down
        n_sites = len(sim.site_names())
        for i, (start, duration, side) in enumerate(
            self.config.partition_schedule
        ):
            known = sim.site_names()
            unknown = [name for name in side if name not in known]
            if unknown:
                raise ValueError(
                    f"partition side names unknown sites {unknown!r} "
                    f"(schema sites: {list(known)!r})"
                )
            sids = frozenset(sim.site_id(name) for name in side)
            if len(sids) >= n_sites:
                raise ValueError(
                    f"partition side {side!r} must be a proper subset "
                    f"of the {n_sites} sites"
                )
            self._episodes.append((start, duration, sids))
            sim.schedule(start, ("net_partition_start", i))
        if self.config.partition_rate > 0 and n_sites >= 2:
            sim.schedule(
                self.rng.expovariate(self.config.partition_rate),
                ("net_partition_start", -1),
            )

    # ------------------------------------------------------------------
    # the message seam
    # ------------------------------------------------------------------

    def _transmit(self, src, dst, delay, payload) -> None:
        if src == dst:
            # Intra-site messages never touch the wire: chaos-free and
            # unsequenced, exactly as in the lossless model (this keeps
            # paxos F=0 degenerate to 2PC and local sends free).
            self.sim.schedule(delay, payload)
            return
        self.channel.send(src, dst, delay, payload)

    def _suspect_down(self, site: str) -> bool:
        sim = self.sim
        if not sim.site_is_up(site):
            return True  # genuinely crashed sites stay suspected
        sid = sim.site_id(site)
        age = self.channel.oldest_unacked_age(sid, sim._now)
        return age > self.config.suspect_timeout

    # ------------------------------------------------------------------
    # chaos draws
    # ------------------------------------------------------------------

    def loss_draw(self) -> bool:
        p = self.config.loss_rate
        return p > 0.0 and self.rng.random() < p

    def dup_draw(self) -> bool:
        p = self.config.dup_rate
        return p > 0.0 and self.rng.random() < p

    def jitter_draw(self) -> float:
        j = self.config.jitter
        return self.rng.uniform(0.0, j) if j > 0.0 else 0.0

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------

    def cut_between(self, a: int, b: int) -> bool:
        """Whether the active cut separates sids ``a`` and ``b``."""
        side = self.cut
        return side is not None and ((a in side) != (b in side))

    def reachable(self, a: int, b: int) -> bool:
        """Whether sids ``a`` and ``b`` are on the same side (or the
        network is whole)."""
        side = self.cut
        return side is None or (a in side) == (b in side)

    def _work_pending(self) -> bool:
        sim = self.sim
        return sim.has_uncommitted() or sim._retained_total > 0

    def _on_partition_start(self, idx: int) -> None:
        sim = self.sim
        if idx < 0:
            # A Poisson-arriving episode.
            if not self._work_pending():
                return  # batch drained; let the chain die
            if self.cut is not None:
                self._schedule_next_poisson()
                return
            duration = self.config.partition_duration
            side = self._random_side()
            if side is None:
                return  # single-site schema: nothing to split
        else:
            if self.cut is not None:
                return  # overlapping scripted episodes: first one wins
            _start, duration, side = self._episodes[idx]
        # Bookkeeping hook runs before the cut flips, so availability
        # integration covers the pre-cut interval with pre-cut state.
        sim.replicas.on_partition_cut()
        self.cut = side
        self._cut_since = sim._now
        sim.result.partitions += 1
        sim.schedule(duration, ("net_partition_stop", idx))

    def _on_partition_stop(self, idx: int) -> None:
        sim = self.sim
        if self.cut is None:
            return
        # The replica manager integrates with the cut still active and
        # schedules catch-up for copies that missed writes while
        # unreachable (the partition-side analogue of a repair).
        sim.replicas.on_partition_heal()
        self.cut = None
        sim.result.partition_time += sim._now - self._cut_since
        if idx < 0 and self._work_pending():
            self._schedule_next_poisson()

    def _schedule_next_poisson(self) -> None:
        self.sim.schedule(
            self.rng.expovariate(self.config.partition_rate),
            ("net_partition_start", -1),
        )

    def _random_side(self) -> frozenset | None:
        n = len(self.sim.site_names())
        if n < 2:
            return None
        sids = list(range(n))
        self.rng.shuffle(sids)
        k = self.rng.randint(1, n - 1)
        return frozenset(sids[:k])
