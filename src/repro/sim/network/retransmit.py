"""The retransmission substrate: acks, backoff, duplicate suppression.

Every cross-site message handed to :meth:`Simulator.transmit` while a
network model is attached becomes a *logical send* with a sequence
number. The channel puts physical copies of it on the wire — the
original, retransmissions on an exponential-backoff timer chain, and
any copies the network spontaneously duplicates — until the receiver's
ack comes back. The receiver dispatches the payload exactly once
(sequence-number dedup suppresses every later copy) and re-acks every
copy it sees, so a lost ack can never wedge the sender.

Ledger: every physical data copy is counted at independent code points
so the identity

    ``net_sent == net_delivered + net_dropped + net_duplicates
    + net_inflight``

is a real invariant, not an arithmetic tautology — ``net_sent`` when a
copy is put on the wire, ``net_dropped`` when a copy is eaten (loss
draw, partition cut, or arrival at a crashed site), ``net_delivered``
when a fresh copy dispatches its payload, ``net_duplicates`` when a
copy is suppressed, and ``net_inflight`` up on enqueue / down on
arrival (its end-of-run value is the copies still in the queue). Acks
are control traffic outside the data ledger and are counted separately
(``net_acks``); ``net_retransmits`` counts timer-driven resends.

Retransmission chains die on their own once the run has no
uncommitted work and no retained locks left — the same drain condition
the failure injector uses — so a message addressed to a permanently
unreachable site cannot keep the event queue alive forever.

The channel also feeds failure suspicion: per destination it tracks
the send time of the oldest unacked message, and
:meth:`NetworkModel._suspect_down` suspects a site once that age
exceeds ``suspect_timeout`` — the timeout-based knowledge a real
protocol has, replacing the omniscient ``site_up()`` checks.
"""

from __future__ import annotations

__all__ = ["RetransmitChannel"]


class _Pending:
    """One unacked logical send."""

    __slots__ = ("seq", "src", "dst", "delay", "payload", "sent_at")

    def __init__(self, seq, src, dst, delay, payload, sent_at):
        self.seq = seq
        self.src = src
        self.dst = dst
        self.delay = delay
        self.payload = payload
        self.sent_at = sent_at


class RetransmitChannel:
    """Reliable delivery over the chaos model's lossy links."""

    def __init__(self, model):
        self.model = model
        self.sim = model.sim
        config = model.config
        self.timeout = config.retransmit_timeout
        self.backoff = config.retransmit_backoff
        self.cap = config.retransmit_cap
        self._next_seq = 0
        #: seq -> _Pending, while unacked.
        self.outstanding: dict[int, _Pending] = {}
        #: seqs whose payload was dispatched (suppresses later copies).
        self.delivered: set[int] = set()
        #: dst sid -> {seq: send time}, the suspicion bookkeeping.
        self._unacked_to: dict[int, dict[int, float]] = {}

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, delay: float, payload: tuple) -> None:
        """Start a logical send: first copy plus the backoff chain.

        The first copy's event carries the inner payload
        (``("net_deliver", seq, src, dst, payload)``), so the sched
        probe the ObserverHub emits at send time lets attribution open
        the same in-network interval it opens for a direct send;
        retransmitted and duplicated copies use ``net_redeliver`` and
        stay invisible to attribution — the interval a lost first copy
        opened simply stays open until some copy finally delivers,
        which is exactly how retransmission waits fold into the
        coordinator/fanout segments.
        """
        sim = self.sim
        seq = self._next_seq
        self._next_seq = seq + 1
        self.outstanding[seq] = _Pending(
            seq, src, dst, delay, payload, sim._now
        )
        self._unacked_to.setdefault(dst, {})[seq] = sim._now
        result = sim.result
        result.net_sent += 1
        result.net_inflight += 1
        sim.schedule(
            delay + self.model.jitter_draw(),
            ("net_deliver", seq, src, dst, payload),
        )
        sim.schedule(self.timeout, ("net_retransmit", seq, 1))

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def on_deliver(self, seq, src, dst, payload) -> None:
        self._deliver(seq, src, dst, payload)

    def on_redeliver(self, seq, src, dst, payload) -> None:
        self._deliver(seq, src, dst, payload)

    def _deliver(self, seq, src, dst, payload) -> None:
        sim = self.sim
        result = sim.result
        result.net_inflight -= 1
        model = self.model
        if model.cut_between(src, dst) or model.loss_draw():
            result.net_dropped += 1
            return
        if not sim.site_id_is_up(dst):
            # Arrived at a crashed site: lost with it. The sender keeps
            # retransmitting and delivers after the repair.
            result.net_dropped += 1
            return
        if seq in self.delivered:
            result.net_duplicates += 1
            self._send_ack(seq, src, dst)  # the earlier ack may be lost
            return
        self.delivered.add(seq)
        result.net_delivered += 1
        if model.dup_draw():
            # The network spontaneously duplicates the message; the
            # copy arrives after its own jitter and is suppressed above.
            result.net_sent += 1
            result.net_inflight += 1
            sim.schedule(
                model.jitter_draw(),
                ("net_redeliver", seq, src, dst, payload),
            )
        self._send_ack(seq, src, dst)
        # Dispatch through the registry *attribute*, so the observer's
        # dispatch shadow (when attached) emits the inner event probe —
        # traced runs see the real message kind at its real delivery
        # time, and attribution closes the interval the send opened.
        sim._registry.dispatch(payload)

    # ------------------------------------------------------------------
    # acks
    # ------------------------------------------------------------------

    def _send_ack(self, seq, src, dst) -> None:
        sim = self.sim
        sim.result.net_acks += 1
        sim.schedule(
            sim.config.network_delay + self.model.jitter_draw(),
            ("net_ack", seq, dst, src),
        )

    def on_ack(self, seq, src, dst) -> None:
        model = self.model
        if model.cut_between(src, dst) or model.loss_draw():
            # Lost ack: the sender retransmits, the receiver re-acks.
            return
        rec = self.outstanding.pop(seq, None)
        if rec is not None:
            pending = self._unacked_to.get(rec.dst)
            if pending is not None:
                pending.pop(seq, None)

    # ------------------------------------------------------------------
    # the backoff chain
    # ------------------------------------------------------------------

    def on_retransmit(self, seq, n) -> None:
        rec = self.outstanding.get(seq)
        if rec is None:
            return  # acked; the chain dies
        sim = self.sim
        if not (sim.has_uncommitted() or sim._retained_total > 0):
            # Nothing left for the message to influence: drop it so the
            # queue can drain (mirrors the failure injector's drain
            # condition).
            self.outstanding.pop(seq, None)
            pending = self._unacked_to.get(rec.dst)
            if pending is not None:
                pending.pop(seq, None)
            return
        result = sim.result
        result.net_retransmits += 1
        result.net_sent += 1
        result.net_inflight += 1
        sim.schedule(
            rec.delay + self.model.jitter_draw(),
            ("net_redeliver", seq, rec.src, rec.dst, rec.payload),
        )
        pause = min(self.timeout * self.backoff ** n, self.cap)
        sim.schedule(pause, ("net_retransmit", seq, n + 1))

    # ------------------------------------------------------------------
    # failure suspicion
    # ------------------------------------------------------------------

    def oldest_unacked_age(self, dst: int, now: float) -> float:
        """Age of the oldest unacked message to ``dst`` (0 if none)."""
        pending = self._unacked_to.get(dst)
        if not pending:
            return 0.0
        return now - min(pending.values())
