"""Adversarial network conditions for the simulator.

``repro.sim.network`` interposes a :class:`NetworkModel` on the
:meth:`Simulator.transmit` message seam (the same seam family the
ObserverHub shadows) and applies, per cross-site message: per-link
delay jitter, i.i.d. drop probability, duplication probability, and
partition episodes — scripted or Poisson-arriving splits of the site
set during which messages crossing the cut are dropped. All chaos is
drawn from a dedicated RNG stream, so a lossless configuration (the
default ``network=None``) is byte-for-byte identical to the perfect
network the simulator always had.

Because messages can now vanish, :mod:`repro.sim.network.retransmit`
provides the substrate that makes the protocols survive it: per-message
sequence numbers, ack tracking, retransmission with exponential backoff
(capped), and duplicate-delivery suppression. The commit protocols'
rounds, Paxos Commit's acceptor fan-out, and the replica-lock fan-out
all ride on it, and timeout-based failure suspicion
(:meth:`Simulator.suspect_down`) replaces the omniscient ``site_up()``
checks on the paths a real protocol could not see.
"""

from repro.sim.network.model import NetworkConfig, NetworkModel
from repro.sim.network.retransmit import RetransmitChannel

__all__ = ["NetworkConfig", "NetworkModel", "RetransmitChannel"]
