"""The instant (local) commit protocol.

Commits a transaction the moment its last operation finishes — no
messages, no prepared window, locks released by each Unlock operation
as it executes. This is the behaviour the simulator had before the
commit subsystem existed, and stays the default: with
``commit_protocol="instant"`` runs are bit-identical to the
pre-subsystem simulator.
"""

from __future__ import annotations

from repro.sim.commit.base import CommitProtocol, register_protocol

__all__ = ["InstantCommit"]


@register_protocol
class InstantCommit(CommitProtocol):
    """Commit locally and immediately on execution completion."""

    name = "instant"
    retains_locks = False

    def on_execution_complete(self, inst) -> None:
        self.sim.finish_commit(inst)
