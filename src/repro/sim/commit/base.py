"""Commit-protocol interface and registry.

A protocol is attached to exactly one :class:`repro.sim.runtime.
Simulator`; during :meth:`CommitProtocol.attach` it may register event
handlers for its own event kinds. The runtime then calls
:meth:`on_execution_complete` when a transaction finishes the last
operation of its partial order, and the protocol decides when (and
whether) that transaction commits.

Protocols compose by subclassing: ``presumed-abort`` flips 2PC's
abort-notification convention, and ``paxos-commit`` replaces its
single-coordinator vote registry with a 2F+1-acceptor bank plus leader
failover while inheriting the prepare/release machinery. Registered
names are sorted by :func:`protocol_names`, which is the order every
"for each protocol" surface (CLI choices, conformance tests) sees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runtime import Simulator, _Instance

__all__ = [
    "CommitProtocol",
    "make_protocol",
    "protocol_names",
    "register_protocol",
]


class CommitProtocol:
    """Base class for atomic-commit protocols.

    Attributes:
        name: registry key, also shown in results.
        retains_locks: when True, Unlock operations do not physically
            release their lock during execution; the lock is *retained*
            and released by the protocol at decision time (strict
            release-at-commit). Protocols that vote must retain, or a
            conflicting transaction could observe effects of a
            transaction that later aborts its commit round.
    """

    name: str = "?"
    retains_locks: bool = False

    def attach(self, sim: "Simulator") -> None:
        """Bind to a simulator; register event handlers here."""
        self.sim = sim

    def on_execution_complete(self, inst: "_Instance") -> None:
        """The transaction finished its last operation; decide commit."""
        raise NotImplementedError

    def on_abort(self, inst: "_Instance") -> None:
        """The transaction aborted; drop any per-round state."""

    def on_durability_wipe(self, site: str) -> None:
        """``site``'s write-ahead log was wiped (amnesia crash).

        Protocols that keep durable per-site state outside the WAL
        proper — Paxos Commit's acceptor registries — drop the site's
        share here. The base protocol keeps no such state.
        """

    def inquiry_target(self, txn: int) -> str | None:
        """The site a recovered participant should ask about ``txn``.

        Recovery replay sends ``cm_inquire`` for each in-doubt
        (prepared, undecided) transaction to this site. None means the
        protocol has no round state to consult — the instant protocol
        never leaves a participant in doubt.
        """
        return None


_PROTOCOLS: dict[str, type[CommitProtocol]] = {}


def register_protocol(cls: type[CommitProtocol]) -> type[CommitProtocol]:
    """Class decorator: add ``cls`` to the protocol registry."""
    _PROTOCOLS[cls.name] = cls
    return cls


def protocol_names() -> list[str]:
    """The registered protocol names, sorted."""
    return sorted(_PROTOCOLS)


def make_protocol(name: str) -> CommitProtocol:
    """Instantiate a commit protocol by name.

    Raises:
        KeyError: for unknown names.
    """
    try:
        return _PROTOCOLS[name]()
    except KeyError:
        raise KeyError(
            f"unknown commit protocol {name!r}; "
            f"choose from {protocol_names()}"
        ) from None
