"""Two-phase commit over the transaction's participant sites.

When a transaction finishes executing, the site of its first operation
becomes the *coordinator* and every site it touched a *participant*.
The round then exchanges messages, each cross-site hop charged
``config.network_delay`` (same-site delivery is free, matching the
execution layer's cross-site model):

1. coordinator -> participants: PREPARE (``cm_prepare``);
2. participant -> coordinator: VOTE yes (``cm_vote``) — execution
   already finished, so a reachable participant always votes yes;
3. all votes in -> the transaction commits at the coordinator and the
   decision travels back out (``cm_release``), releasing the locks the
   participant retained; the participant ACKs (counted, not simulated).

Failures make it interesting (see :mod:`repro.sim.failures`):

* messages addressed to a down site are lost;
* a retry timer (``cm_retry``, period ``config.commit_timeout``)
  re-sends PREPARE to participants whose vote is missing — transient
  losses delay the round rather than kill it;
* if at retry time a missing voter is *down*, its unprepared state is
  volatile and lost, so the coordinator decides ABORT (the transaction
  releases everything and restarts — an abort cascade under
  contention);
* while the *coordinator* is down no decision can be taken: prepared
  participants keep their locks and conflicting transactions block on
  the coordinator's recovery (``prepared_block_time``);
* a commit decision addressed to a down participant is retransmitted
  until the site recovers, so retained locks outlive the crash — the
  classic blocked-participant window of 2PC.

The PREPARED window also bends the contention policies: a prepared
holder can no longer be wounded (the runtime downgrades ABORT_HOLDER
to WAIT_PREPARED), which is sound because a decision always arrives in
finite time.

With a durability model attached (``config.durability``), the round
additionally observes the protocol's classic force points
(:mod:`repro.sim.durability`): a participant forces a *prepare* record
before VOTE-YES, the coordinator forces the *decision* record before
the release fan-out, and a participant forces the decision before
releasing and ACKing — each force costing ``flush_time`` on that
site's timeline. Crash-recovered participants resolve their in-doubt
transactions by inquiry: ``cm_inquire`` asks the coordinator, which
answers with a decision (``cm_status``), re-PREPAREs a still-open
round, or reports abort; a participant that lost its volatile state
before its prepare record became durable answers PREPARE with
``cm_refuse``, aborting the round. With the field unset (`sim.
durability is None`) every handler takes its original branch — the
pre-durability instruction stream, bit for bit.
"""

from __future__ import annotations

from repro.sim.commit.base import CommitProtocol, register_protocol

__all__ = ["TwoPhaseCommit"]

#: the runtime's committed-status literal (a value import would be an
#: import cycle; see repro.sim.runtime).
_COMMITTED = "committed"


class _Round:
    """Coordinator-side state of one commit round."""

    __slots__ = ("attempt", "coordinator", "participants", "votes",
                 "decided", "deciding")

    def __init__(self, attempt: int, coordinator: str,
                 participants: frozenset[str]):
        self.attempt = attempt
        self.coordinator = coordinator
        self.participants = participants
        self.votes: set[str] = set()
        self.decided = False
        # True while the coordinator's decision record is being
        # flushed (durability model only): the outcome is chosen but
        # not yet durable, so no competing decision may start and no
        # inquiry may be answered with the opposite verdict.
        self.deciding = False


@register_protocol
class TwoPhaseCommit(CommitProtocol):
    """Classic presumed-nothing 2PC: every decision is acknowledged."""

    name = "two-phase"
    retains_locks = True
    #: presumed-abort flips this: aborts are silent (no ABORT round,
    #: no acks), participants presume.
    notify_on_abort = True

    def attach(self, sim) -> None:
        super().attach(sim)
        self._rounds: dict[int, _Round] = {}
        sim.register_handler("cm_prepare", self._on_prepare)
        sim.register_handler("cm_vote", self._on_vote)
        sim.register_handler("cm_retry", self._on_retry)
        sim.register_handler("cm_release", self._on_release)
        # Recovery-inquiry events: only ever sent under a durability
        # model, but registered unconditionally (registration is free
        # and keeps the handler table uniform).
        sim.register_handler("cm_inquire", self._on_inquire)
        sim.register_handler("cm_status", self._on_status)
        sim.register_handler("cm_refuse", self._on_refuse)

    # ------------------------------------------------------------------
    # messaging helpers
    # ------------------------------------------------------------------

    def _delay(self, coordinator: str, site: str) -> float:
        if site == coordinator:
            return 0.0
        return self.sim.config.network_delay

    def _send(self, delay: float, payload: tuple) -> None:
        """Count one protocol message and schedule its delivery."""
        self.sim.result.commit_messages += 1
        self.sim.schedule(delay, payload)

    def _send_to(self, src: str, dst: str, payload: tuple) -> None:
        """Count one protocol message and route it site-to-site.

        This is the chaos seam: under a network model the message rides
        the retransmission channel (loss, duplication, partitions, acks
        and backoff); without one :meth:`Simulator.transmit` is a plain
        scheduled delivery, bit-identical to :meth:`_send`.
        """
        sim = self.sim
        sim.result.commit_messages += 1
        sim.transmit(
            sim.site_id(src), sim.site_id(dst),
            self._delay(src, dst), payload,
        )

    # ------------------------------------------------------------------
    # coordinator side
    # ------------------------------------------------------------------

    def on_execution_complete(self, inst) -> None:
        sim = self.sim
        sim.mark_prepared(inst)
        coordinator, sites = sim.transaction_sites(inst.index)
        round = _Round(inst.attempt, coordinator, frozenset(sites))
        self._rounds[inst.index] = round
        self._broadcast_prepare(inst.index, round)
        sim.schedule(
            sim.config.commit_timeout,
            ("cm_retry", inst.index, inst.attempt),
        )

    def _broadcast_prepare(
        self, txn: int, round: _Round, only_missing: bool = False
    ) -> None:
        for site in sorted(round.participants):
            if only_missing and site in round.votes:
                continue
            self._send_to(
                round.coordinator, site,
                ("cm_prepare", txn, site, round.attempt),
            )

    def _on_vote(self, txn: int, site: str, attempt: int) -> None:
        round = self._rounds.get(txn)
        if (round is None or round.attempt != attempt or round.decided
                or round.deciding):
            return
        if not self.sim.site_is_up(round.coordinator):
            return  # vote lost; the retry loop re-collects it
        round.votes.add(site)
        if round.votes == round.participants:
            self._decide_commit(txn, round)

    def _decide_commit(self, txn: int, round: _Round) -> None:
        dur = self.sim.durability
        if dur is None:
            self._apply_commit(txn, round)
            return
        if round.deciding or round.decided:
            return
        # Force the commit record at the coordinator before anything
        # irreversible happens. A coordinator crash mid-flush cancels
        # it (the decision was never taken); the cancel re-arms the
        # retry chain, which re-drives the decision after recovery —
        # the retry branches that reach a decide consume the chain, so
        # without the re-arm a crash here would orphan the round.
        round.deciding = True

        def apply() -> None:
            round.deciding = False
            if not round.decided:
                self._apply_commit(txn, round)

        def cancel() -> None:
            round.deciding = False
            self._rearm_retry(txn, round)

        dur.force(
            round.coordinator,
            ("decision", txn, round.attempt, "commit"),
            apply, cancel,
        )

    def _apply_commit(self, txn: int, round: _Round) -> None:
        sim = self.sim
        round.decided = True
        sim.finish_commit(sim.instance(txn))
        for site in sorted(round.participants):
            self._send_to(
                round.coordinator, site,
                ("cm_release", txn, site, round.attempt),
            )
            # The participant's ACK is counted when it actually
            # processes the decision (see _on_release) — a down
            # participant has not acknowledged anything yet.

    def _decide_abort(self, txn: int, round: _Round) -> None:
        dur = self.sim.durability
        if dur is None or not self.notify_on_abort:
            # No durability model — or presumed-abort, whose whole
            # optimisation is that aborts are never logged: absent
            # records read as ABORT, so no force is needed.
            self._apply_abort(txn, round)
            return
        if round.deciding or round.decided:
            return
        round.deciding = True

        def apply() -> None:
            round.deciding = False
            if not round.decided:
                self._apply_abort(txn, round)

        def cancel() -> None:
            round.deciding = False
            self._rearm_retry(txn, round)

        dur.force(
            round.coordinator,
            ("decision", txn, round.attempt, "abort"),
            apply, cancel,
        )

    def _rearm_retry(self, txn: int, round: _Round) -> None:
        """Restart the retry chain for a round whose decision flush was
        crash-cancelled. Subclasses with richer retry payloads (Paxos
        tags retries with the ballot) override this. A duplicate chain
        is harmless: every ``cm_retry`` delivery re-checks the round's
        identity and decision state before acting."""
        self.sim.schedule(
            self.sim.config.commit_timeout,
            ("cm_retry", txn, round.attempt),
        )

    def _apply_abort(self, txn: int, round: _Round) -> None:
        sim = self.sim
        round.decided = True
        if self.notify_on_abort:
            # ABORT to every participant that voted, plus their acks.
            sim.result.commit_messages += 2 * len(round.votes)
        del self._rounds[txn]
        sim.abort_from_commit(sim.instance(txn))

    def _on_retry(self, txn: int, attempt: int) -> None:
        sim = self.sim
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if round.deciding:
            # The decision record is mid-flush: keep the chain alive
            # so a crash-cancelled flush is re-driven.
            sim.schedule(
                sim.config.commit_timeout, ("cm_retry", txn, attempt)
            )
            return
        if not sim.site_is_up(round.coordinator):
            # Coordinator down: no decision possible; prepared
            # participants stay blocked until it recovers.
            sim.schedule(
                sim.config.commit_timeout, ("cm_retry", txn, attempt)
            )
            return
        missing = round.participants - round.votes
        if not missing:
            # Every vote is in but no decision stands — only reachable
            # when a coordinator crash cancelled the decision flush
            # (without a durability model the decision fires at the
            # last vote, synchronously). Re-drive it.
            self._decide_commit(txn, round)
            return
        if any(sim.suspect_down(site) for site in missing):
            # A missing voter is suspected down (crashed, or — under a
            # network model — silent past the suspicion timeout): its
            # unprepared execution state is presumed lost, so the round
            # cannot complete.
            self._decide_abort(txn, round)
            return
        # Transient loss: re-send PREPARE to the missing voters only.
        self._broadcast_prepare(txn, round, only_missing=True)
        sim.schedule(
            sim.config.commit_timeout, ("cm_retry", txn, attempt)
        )

    # ------------------------------------------------------------------
    # participant side
    # ------------------------------------------------------------------

    def _on_prepare(self, txn: int, site: str, attempt: int) -> None:
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if not self.sim.site_is_up(site):
            return  # message lost: the participant is down
        dur = self.sim.durability
        if dur is None:
            # Execution finished before the round began, so the vote
            # is yes.
            self._send_votes(txn, site, attempt, round)
            return
        self._prepare_with_log(txn, site, attempt, round)

    def _send_votes(
        self, txn: int, site: str, attempt: int, round: _Round
    ) -> None:
        """Send the participant's yes-vote (Paxos fans out instead)."""
        self._send_to(
            site, round.coordinator,
            ("cm_vote", txn, site, attempt),
        )

    def _prepare_with_log(
        self, txn: int, site: str, attempt: int, round: _Round
    ) -> None:
        """Durable-prepare path: force the prepare record, then vote."""
        sim = self.sim
        dur = sim.durability
        if dur.has_prepare(site, txn, attempt):
            # Already durably prepared (a retransmitted PREPARE, or a
            # recovered participant being re-asked): vote again
            # without a second force.
            self._send_votes(txn, site, attempt, round)
            return
        sid = sim.site_id(site)
        inst = sim.instance(txn)
        locks = tuple(sorted(e for e in inst.retained if e[1] == sid))
        if not locks:
            # The site lost this transaction's volatile state (a crash
            # wiped its lock table — possibly with log amnesia —
            # before the prepare record became durable): it must not
            # vote yes on state it no longer has.
            self._send_to(
                site, round.coordinator,
                ("cm_refuse", txn, site, attempt),
            )
            return
        record = ("prepare", txn, attempt, locks)
        if dur.flush_pending(site, record):
            return  # an earlier PREPARE's force is still in flight
        dur.force(
            site, record,
            lambda: self._vote_if_current(txn, site, attempt),
        )

    def _vote_if_current(self, txn: int, site: str, attempt: int) -> None:
        """Flush-completion continuation: vote if the round stands."""
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if not self.sim.site_is_up(site):
            return  # pragma: no cover - a crash cancels the flush
        self._send_votes(txn, site, attempt, round)

    def _on_release(self, txn: int, site: str, attempt: int) -> None:
        sim = self.sim
        inst = sim.instance(txn)
        if inst.attempt != attempt:
            return  # stale: the round aborted and the txn moved on
        if not sim.site_is_up(site):
            # Participant down: retransmit the decision until it
            # recovers — its retained locks stay blocked meanwhile.
            self._send(
                sim.config.commit_timeout,
                ("cm_release", txn, site, attempt),
            )
            return
        dur = sim.durability
        if dur is None:
            sim.release_retained(inst, site)
            sim.result.commit_messages += 1  # the participant's ACK
            if not inst.retained:
                self._rounds.pop(txn, None)
            return
        # The participant forces the decision record before releasing
        # and ACKing — the force that makes a later crash replay skip
        # this transaction instead of re-entering doubt.
        if dur.has_decision(site, txn, attempt):
            self._apply_release(txn, site, attempt)
            return
        record = ("decision", txn, attempt, "commit")
        if dur.flush_pending(site, record):
            return  # a duplicate decision's force is in flight
        dur.force(
            site, record,
            lambda: self._apply_release(txn, site, attempt),
        )

    def _apply_release(self, txn: int, site: str, attempt: int) -> None:
        """Release the participant's retained locks and ACK."""
        sim = self.sim
        inst = sim.instance(txn)
        if inst.attempt != attempt:
            return  # the round aborted while the record flushed
        sim.release_retained(inst, site)
        sim.result.commit_messages += 1  # the participant's ACK
        if not inst.retained:
            self._rounds.pop(txn, None)
        dur = sim.durability
        if dur is not None:
            dur.resolved(txn, site)

    # ------------------------------------------------------------------
    # recovery inquiry (durability model only)
    # ------------------------------------------------------------------

    def inquiry_target(self, txn: int) -> str | None:
        round = self._rounds.get(txn)
        if round is not None:
            return round.coordinator
        return self.sim.transaction_sites(txn)[0]

    def _on_inquire(self, txn: int, site: str, attempt: int) -> None:
        """A recovered participant asks about an in-doubt transaction.

        Answer with the durable truth: COMMIT if the transaction
        committed at this attempt, a re-PREPARE if the round is still
        collecting votes (the inquirer's vote may be the missing one),
        ABORT otherwise — 2PC logs its aborts, presumed-abort answers
        from the absence of a record; the message is the same.
        """
        sim = self.sim
        round = self._rounds.get(txn)
        coordinator = (
            round.coordinator if round is not None
            else sim.transaction_sites(txn)[0]
        )
        if not sim.site_is_up(coordinator):
            return  # lost; the participant's requery re-asks
        inst = sim.instance(txn)
        if inst.status == _COMMITTED and inst.attempt == attempt:
            self._send_to(
                coordinator, site,
                ("cm_status", txn, site, attempt, "commit"),
            )
            return
        if (round is not None and round.attempt == attempt
                and not round.decided):
            if round.deciding:
                # The verdict is mid-flush: answering now could
                # contradict it. Stay silent; the requery re-asks.
                return
            self._send_to(
                coordinator, site,
                ("cm_prepare", txn, site, attempt),
            )
            return
        self._send_to(
            coordinator, site,
            ("cm_status", txn, site, attempt, "abort"),
        )

    def _on_status(
        self, txn: int, site: str, attempt: int, verdict: str
    ) -> None:
        """An inquiry answer reached the recovered participant."""
        sim = self.sim
        if not sim.site_is_up(site):
            return  # lost; the requery re-asks after the next recovery
        dur = sim.durability
        if dur is None:
            return  # pragma: no cover - only sent under a dur model
        inst = sim.instance(txn)
        if verdict == "commit" and inst.attempt == attempt:
            if dur.has_decision(site, txn, attempt):
                self._apply_release(txn, site, attempt)
                return
            record = ("decision", txn, attempt, "commit")
            if dur.flush_pending(site, record):
                return
            dur.force(
                site, record,
                lambda: self._apply_release(txn, site, attempt),
            )
            return
        # ABORT (or a stale attempt): presumption resolves the doubt;
        # the global abort path owns any remaining lock state.
        dur.resolved(txn, site)

    def _on_refuse(self, txn: int, site: str, attempt: int) -> None:
        """A participant refused PREPARE: its volatile state is gone."""
        round = self._rounds.get(txn)
        if (round is None or round.attempt != attempt or round.decided
                or round.deciding):
            return
        if not self.sim.site_is_up(round.coordinator):
            return  # lost; the retry loop aborts on suspicion instead
        self._decide_abort(txn, round)

    # ------------------------------------------------------------------
    # runtime callbacks
    # ------------------------------------------------------------------

    def on_abort(self, inst) -> None:
        self._rounds.pop(inst.index, None)
