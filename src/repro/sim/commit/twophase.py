"""Two-phase commit over the transaction's participant sites.

When a transaction finishes executing, the site of its first operation
becomes the *coordinator* and every site it touched a *participant*.
The round then exchanges messages, each cross-site hop charged
``config.network_delay`` (same-site delivery is free, matching the
execution layer's cross-site model):

1. coordinator -> participants: PREPARE (``cm_prepare``);
2. participant -> coordinator: VOTE yes (``cm_vote``) — execution
   already finished, so a reachable participant always votes yes;
3. all votes in -> the transaction commits at the coordinator and the
   decision travels back out (``cm_release``), releasing the locks the
   participant retained; the participant ACKs (counted, not simulated).

Failures make it interesting (see :mod:`repro.sim.failures`):

* messages addressed to a down site are lost;
* a retry timer (``cm_retry``, period ``config.commit_timeout``)
  re-sends PREPARE to participants whose vote is missing — transient
  losses delay the round rather than kill it;
* if at retry time a missing voter is *down*, its unprepared state is
  volatile and lost, so the coordinator decides ABORT (the transaction
  releases everything and restarts — an abort cascade under
  contention);
* while the *coordinator* is down no decision can be taken: prepared
  participants keep their locks and conflicting transactions block on
  the coordinator's recovery (``prepared_block_time``);
* a commit decision addressed to a down participant is retransmitted
  until the site recovers, so retained locks outlive the crash — the
  classic blocked-participant window of 2PC.

The PREPARED window also bends the contention policies: a prepared
holder can no longer be wounded (the runtime downgrades ABORT_HOLDER
to WAIT_PREPARED), which is sound because a decision always arrives in
finite time.
"""

from __future__ import annotations

from repro.sim.commit.base import CommitProtocol, register_protocol

__all__ = ["TwoPhaseCommit"]


class _Round:
    """Coordinator-side state of one commit round."""

    __slots__ = ("attempt", "coordinator", "participants", "votes",
                 "decided")

    def __init__(self, attempt: int, coordinator: str,
                 participants: frozenset[str]):
        self.attempt = attempt
        self.coordinator = coordinator
        self.participants = participants
        self.votes: set[str] = set()
        self.decided = False


@register_protocol
class TwoPhaseCommit(CommitProtocol):
    """Classic presumed-nothing 2PC: every decision is acknowledged."""

    name = "two-phase"
    retains_locks = True
    #: presumed-abort flips this: aborts are silent (no ABORT round,
    #: no acks), participants presume.
    notify_on_abort = True

    def attach(self, sim) -> None:
        super().attach(sim)
        self._rounds: dict[int, _Round] = {}
        sim.register_handler("cm_prepare", self._on_prepare)
        sim.register_handler("cm_vote", self._on_vote)
        sim.register_handler("cm_retry", self._on_retry)
        sim.register_handler("cm_release", self._on_release)

    # ------------------------------------------------------------------
    # messaging helpers
    # ------------------------------------------------------------------

    def _delay(self, coordinator: str, site: str) -> float:
        if site == coordinator:
            return 0.0
        return self.sim.config.network_delay

    def _send(self, delay: float, payload: tuple) -> None:
        """Count one protocol message and schedule its delivery."""
        self.sim.result.commit_messages += 1
        self.sim.schedule(delay, payload)

    def _send_to(self, src: str, dst: str, payload: tuple) -> None:
        """Count one protocol message and route it site-to-site.

        This is the chaos seam: under a network model the message rides
        the retransmission channel (loss, duplication, partitions, acks
        and backoff); without one :meth:`Simulator.transmit` is a plain
        scheduled delivery, bit-identical to :meth:`_send`.
        """
        sim = self.sim
        sim.result.commit_messages += 1
        sim.transmit(
            sim.site_id(src), sim.site_id(dst),
            self._delay(src, dst), payload,
        )

    # ------------------------------------------------------------------
    # coordinator side
    # ------------------------------------------------------------------

    def on_execution_complete(self, inst) -> None:
        sim = self.sim
        sim.mark_prepared(inst)
        coordinator, sites = sim.transaction_sites(inst.index)
        round = _Round(inst.attempt, coordinator, frozenset(sites))
        self._rounds[inst.index] = round
        self._broadcast_prepare(inst.index, round)
        sim.schedule(
            sim.config.commit_timeout,
            ("cm_retry", inst.index, inst.attempt),
        )

    def _broadcast_prepare(
        self, txn: int, round: _Round, only_missing: bool = False
    ) -> None:
        for site in sorted(round.participants):
            if only_missing and site in round.votes:
                continue
            self._send_to(
                round.coordinator, site,
                ("cm_prepare", txn, site, round.attempt),
            )

    def _on_vote(self, txn: int, site: str, attempt: int) -> None:
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if not self.sim.site_is_up(round.coordinator):
            return  # vote lost; the retry loop re-collects it
        round.votes.add(site)
        if round.votes == round.participants:
            self._decide_commit(txn, round)

    def _decide_commit(self, txn: int, round: _Round) -> None:
        sim = self.sim
        round.decided = True
        sim.finish_commit(sim.instance(txn))
        for site in sorted(round.participants):
            self._send_to(
                round.coordinator, site,
                ("cm_release", txn, site, round.attempt),
            )
            # The participant's ACK is counted when it actually
            # processes the decision (see _on_release) — a down
            # participant has not acknowledged anything yet.

    def _decide_abort(self, txn: int, round: _Round) -> None:
        sim = self.sim
        round.decided = True
        if self.notify_on_abort:
            # ABORT to every participant that voted, plus their acks.
            sim.result.commit_messages += 2 * len(round.votes)
        del self._rounds[txn]
        sim.abort_from_commit(sim.instance(txn))

    def _on_retry(self, txn: int, attempt: int) -> None:
        sim = self.sim
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if not sim.site_is_up(round.coordinator):
            # Coordinator down: no decision possible; prepared
            # participants stay blocked until it recovers.
            sim.schedule(
                sim.config.commit_timeout, ("cm_retry", txn, attempt)
            )
            return
        missing = round.participants - round.votes
        if any(sim.suspect_down(site) for site in missing):
            # A missing voter is suspected down (crashed, or — under a
            # network model — silent past the suspicion timeout): its
            # unprepared execution state is presumed lost, so the round
            # cannot complete.
            self._decide_abort(txn, round)
            return
        # Transient loss: re-send PREPARE to the missing voters only.
        self._broadcast_prepare(txn, round, only_missing=True)
        sim.schedule(
            sim.config.commit_timeout, ("cm_retry", txn, attempt)
        )

    # ------------------------------------------------------------------
    # participant side
    # ------------------------------------------------------------------

    def _on_prepare(self, txn: int, site: str, attempt: int) -> None:
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if not self.sim.site_is_up(site):
            return  # message lost: the participant is down
        # Execution finished before the round began, so the vote is yes.
        self._send_to(
            site, round.coordinator,
            ("cm_vote", txn, site, attempt),
        )

    def _on_release(self, txn: int, site: str, attempt: int) -> None:
        sim = self.sim
        inst = sim.instance(txn)
        if inst.attempt != attempt:
            return  # stale: the round aborted and the txn moved on
        if not sim.site_is_up(site):
            # Participant down: retransmit the decision until it
            # recovers — its retained locks stay blocked meanwhile.
            self._send(
                sim.config.commit_timeout,
                ("cm_release", txn, site, attempt),
            )
            return
        sim.release_retained(inst, site)
        sim.result.commit_messages += 1  # the participant's ACK
        if not inst.retained:
            self._rounds.pop(txn, None)

    # ------------------------------------------------------------------
    # runtime callbacks
    # ------------------------------------------------------------------

    def on_abort(self, inst) -> None:
        self._rounds.pop(inst.index, None)
