"""Pluggable atomic-commit protocols for the simulator.

The execution layer (:mod:`repro.sim.runtime`) walks each
transaction's partial order; *this* package decides what "the last
operation finished" means for durability:

* ``instant`` — commit locally the moment execution completes; no
  messages, no blocking (the pre-commit-subsystem behaviour, and the
  default);
* ``two-phase`` — a coordinator site runs classic 2PC over the
  transaction's participant sites: PREPARE out, VOTE back, decision
  out, ACK back, every cross-site hop charged ``network_delay``. Locks
  are retained through the PREPARED window (strict release-at-commit),
  which is what makes commit a *coordination* problem: waiters block
  on the coordinator, and wound-wait must not wound a prepared holder;
* ``presumed-abort`` — 2PC with the presumed-abort optimisation: an
  aborting coordinator writes nothing and notifies nobody, so the
  abort path costs zero messages (participants presume abort);
* ``paxos-commit`` — Gray & Lamport's non-blocking commit: votes are
  registered at 2F+1 acceptor sites and any up acceptor takes over a
  round whose leader stays down past ``commit_timeout``, so a
  coordinator crash is masked instead of stalling prepared holders.
  At F=0 (``commit_fault_tolerance=0``) it is message-for-message 2PC.

Protocols interact with the runtime only through its public surface
(``register_handler``, ``schedule``, ``mark_prepared``,
``finish_commit``, ``abort_from_commit``, ``release_retained``), so a
new protocol is a self-contained module that registers its own event
kinds — the core loop never learns them.
"""

from repro.sim.commit.base import (
    CommitProtocol,
    make_protocol,
    protocol_names,
    register_protocol,
)
from repro.sim.commit.instant import InstantCommit
from repro.sim.commit.paxos import PaxosCommit
from repro.sim.commit.presumed_abort import PresumedAbortCommit
from repro.sim.commit.twophase import TwoPhaseCommit

__all__ = [
    "CommitProtocol",
    "InstantCommit",
    "PaxosCommit",
    "PresumedAbortCommit",
    "TwoPhaseCommit",
    "make_protocol",
    "protocol_names",
    "register_protocol",
]
