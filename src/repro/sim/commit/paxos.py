"""Paxos Commit: non-blocking atomic commit (Gray & Lamport).

*Consensus on Transaction Commit* replaces 2PC's single point of
failure — the coordinator — with a bank of 2F+1 **acceptor** sites
that durably register the participants' votes. The protocol masks up
to F simultaneous site failures:

1. the leader (initially the transaction's coordinator site) sends
   PREPARE to every participant, exactly as in 2PC (``cm_prepare``);
2. each participant sends its yes-vote to *all* acceptors
   (``cm_vote``) instead of to the coordinator alone; an up acceptor
   registers the vote on its log and relays the acceptance to the
   leader (``cm_learn`` — free when the acceptor shares the leader's
   site, which is what makes F=0 collapse to 2PC's message bill);
3. the decision is COMMIT as soon as the leader learns that, for every
   participant, a **majority** of acceptors registered its vote — the
   decision is then durable no matter which F sites crash next — and
   the release fan-out (``cm_release`` + ACKs) is inherited from 2PC;
4. if the leader is down when the retry timer fires
   (``config.commit_timeout``), the next up acceptor in rotation
   *takes over* the round (``Simulator.leader_takeover``): it runs a
   phase-1 round trip to every up acceptor (``cm_state``) to recover
   the registered votes, then finishes the round itself. Prepared
   participants therefore stop blocking on a crashed coordinator —
   the stall 2PC cannot avoid (its retry handler can only wait).

Acceptor state is durable across crashes; a *down* acceptor simply
receives no messages, so votes addressed to it are lost until a
retransmitted PREPARE makes the participant vote again. Without a
durability model that durability is an assumption (the registry just
persists in round state); with one (``config.durability``) it is
earned — an acceptor forces an *accept* record before registering a
vote, a takeover leader forces a *ballot* record before deposing the
old one, and an amnesia log-wipe really does empty the site's
registries (:meth:`PaxosCommit.on_durability_wipe`), which is exactly
the failure the 2F+1 redundancy is there to mask.

Degeneracy contract, pinned by the golden-digest suite: with
``commit_fault_tolerance=0`` there is exactly one acceptor, co-located
with the coordinator, every relay is free, takeover has no candidate —
the round is message-for-message (and therefore digest-for-digest)
classic 2PC at failure rate 0.

Abort handling keeps 2PC's presumed-nothing convention (the leader
notifies voters, voters ACK), so the protocols differ only where the
replicated registrars matter.
"""

from __future__ import annotations

from repro.sim.commit.base import register_protocol
from repro.sim.commit.twophase import TwoPhaseCommit

__all__ = ["PaxosCommit"]


class _PaxosRound:
    """Round state: the durable acceptor registry plus the current
    leader's learned view.

    ``coordinator`` names the *current leader's site* (the inherited
    2PC messaging helpers charge delays relative to it); takeovers
    reassign it. ``accepted`` is each acceptor's durable vote registry;
    ``learned`` maps a participant site to the acceptors the leader
    knows have registered its vote. ``ballot`` increments per takeover
    so a deposed leader's stale retry chain and phase-1 responses are
    ignored.
    """

    __slots__ = ("attempt", "coordinator", "participants", "decided",
                 "deciding", "acceptors", "majority", "ballot",
                 "accepted", "learned")

    def __init__(self, attempt: int, coordinator: str,
                 participants: frozenset[str],
                 acceptors: tuple[str, ...]):
        self.attempt = attempt
        self.coordinator = coordinator
        self.participants = participants
        self.decided = False
        self.deciding = False  # decision record mid-flush (see _Round)
        self.acceptors = acceptors
        self.majority = len(acceptors) // 2 + 1
        self.ballot = 0
        self.accepted: dict[str, set[str]] = {a: set() for a in acceptors}
        self.learned: dict[str, set[str]] = {}

    @property
    def votes(self) -> set[str]:
        """Participants the leader knows are majority-registered.

        The inherited 2PC machinery reads ``round.votes`` (re-PREPARE
        targeting, abort notification counts); exposing the
        majority-learned set here lets it operate unchanged.
        """
        majority = self.majority
        return {
            site
            for site, acceptors in self.learned.items()
            if len(acceptors) >= majority
        }


@register_protocol
class PaxosCommit(TwoPhaseCommit):
    """2F+1-acceptor Paxos Commit with coordinator failover."""

    name = "paxos-commit"
    retains_locks = True
    notify_on_abort = True

    def attach(self, sim) -> None:
        super().attach(sim)
        self.fault_tolerance = max(0, sim.config.commit_fault_tolerance)
        sim.register_handler("cm_learn", self._on_learn)
        sim.register_handler("cm_state", self._on_state)

    def _send_acceptor(self, delay: float, payload: tuple) -> None:
        """An acceptor-bank message: counted in both ledgers."""
        self.sim.result.acceptor_messages += 1
        self._send(delay, payload)

    def _send_acceptor_to(self, src: str, dst: str,
                          payload: tuple) -> None:
        """Route an acceptor-bank message site-to-site (chaos seam)."""
        self.sim.result.acceptor_messages += 1
        self._send_to(src, dst, payload)

    # ------------------------------------------------------------------
    # leader side
    # ------------------------------------------------------------------

    def on_execution_complete(self, inst) -> None:
        sim = self.sim
        sim.mark_prepared(inst)
        coordinator, sites = sim.transaction_sites(inst.index)
        acceptors = sim.acceptor_sites(
            coordinator, 2 * self.fault_tolerance + 1
        )
        round = _PaxosRound(
            inst.attempt, coordinator, frozenset(sites), acceptors
        )
        self._rounds[inst.index] = round
        self._broadcast_prepare(inst.index, round)
        sim.schedule(
            sim.config.commit_timeout,
            ("cm_retry", inst.index, inst.attempt, round.ballot),
        )

    def _learn(self, txn: int, round: _PaxosRound, site: str,
               acceptor: str) -> None:
        """The leader learns that ``acceptor`` registered ``site``'s
        vote; decide once every participant is majority-registered."""
        round.learned.setdefault(site, set()).add(acceptor)
        if not round.decided and round.votes == round.participants:
            self._decide_commit(txn, round)

    def _on_learn(self, txn: int, acceptor: str, site: str,
                  attempt: int) -> None:
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if not self.sim.site_is_up(round.coordinator):
            return  # leader down: the relay is lost; phase 1 recovers it
        self._learn(txn, round, site, acceptor)

    def _on_state(self, txn: int, acceptor: str, attempt: int,
                  ballot: int) -> None:
        """Phase-1 response: an up acceptor's durable registry reaches
        the new leader (state read at delivery — it only grows)."""
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if ballot != round.ballot:
            return  # a newer takeover superseded this phase 1
        if not self.sim.site_is_up(round.coordinator):
            return  # the new leader crashed too; the next one re-asks
        for site in round.accepted.get(acceptor, ()):
            self._learn(txn, round, site, acceptor)

    def _next_leader(self, round: _PaxosRound) -> str | None:
        """The first up acceptor after the current leader, in rotation
        order; None when every acceptor is down (the round stalls,
        exactly like 2PC — more than F failures void the guarantee)."""
        acceptors = round.acceptors
        try:
            start = acceptors.index(round.coordinator)
        except ValueError:  # pragma: no cover - leaders are acceptors
            start = 0
        for step in range(1, len(acceptors) + 1):
            candidate = acceptors[(start + step) % len(acceptors)]
            if candidate != round.coordinator and not self.sim.suspect_down(
                candidate
            ):
                return candidate
        return None

    def _on_retry(self, txn: int, attempt: int, ballot: int) -> None:
        sim = self.sim
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if ballot != round.ballot:
            return  # a takeover re-armed the chain under a newer ballot
        if round.deciding:
            # The decision record is mid-flush (durability model):
            # keep the chain alive so a crash-cancelled flush is
            # re-driven.
            sim.schedule(
                sim.config.commit_timeout,
                ("cm_retry", txn, attempt, ballot),
            )
            return
        if sim.suspect_down(round.coordinator):
            # The leader is suspected (crashed — or, under a network
            # model, silent past the suspicion timeout): rotate.
            new_leader = self._next_leader(round)
            if new_leader is None:
                # Every acceptor down (> F failures): nothing to do but
                # wait, as 2PC would.
                sim.schedule(
                    sim.config.commit_timeout,
                    ("cm_retry", txn, attempt, ballot),
                )
                return
            dur = sim.durability
            if dur is None:
                self._takeover(txn, round, attempt, new_leader)
                return
            # The new leader forces its ballot record before deposing
            # the old one; a crash mid-flush re-arms the old chain so
            # the next retry rotates again.
            dur.force(
                new_leader,
                ("ballot", txn, attempt, round.ballot + 1),
                lambda: self._takeover_if_current(
                    txn, round, attempt, ballot, new_leader
                ),
                lambda: sim.schedule(
                    sim.config.commit_timeout,
                    ("cm_retry", txn, attempt, ballot),
                ),
            )
            return
        missing = round.participants - round.votes
        if not missing:
            # Every participant is majority-registered but no decision
            # stands — only reachable when a leader crash cancelled the
            # decision flush. Re-drive it.
            self._decide_commit(txn, round)
            return
        if any(sim.suspect_down(site) for site in missing):
            # A missing voter is suspected down: its unprepared
            # execution state is presumed lost (2PC's abort rule,
            # unchanged).
            self._decide_abort(txn, round)
            return
        # Transient loss: re-PREPARE the under-registered participants;
        # they re-vote to the full acceptor bank.
        self._broadcast_prepare(txn, round, only_missing=True)
        sim.schedule(
            sim.config.commit_timeout, ("cm_retry", txn, attempt, ballot)
        )

    def _rearm_retry(self, txn: int, round: _PaxosRound) -> None:
        """Paxos retries are ballot-tagged so a takeover can invalidate
        stale chains; re-arm under the round's current ballot."""
        self.sim.schedule(
            self.sim.config.commit_timeout,
            ("cm_retry", txn, round.attempt, round.ballot),
        )

    def _takeover_if_current(
        self, txn: int, round: _PaxosRound, attempt: int, ballot: int,
        new_leader: str,
    ) -> None:
        """Ballot-flush continuation: depose if nothing superseded us."""
        sim = self.sim
        if (self._rounds.get(txn) is not round or round.decided
                or round.deciding):
            return
        if round.attempt != attempt or round.ballot != ballot:
            return  # a competing takeover won while we flushed
        if not sim.site_is_up(new_leader):  # pragma: no cover
            # A crash cancels the flush, so this cannot fire; re-arm
            # the chain defensively all the same.
            sim.schedule(
                sim.config.commit_timeout,
                ("cm_retry", txn, attempt, ballot),
            )
            return
        self._takeover(txn, round, attempt, new_leader)

    def _takeover(
        self, txn: int, round: _PaxosRound, attempt: int, new_leader: str
    ) -> None:
        sim = self.sim
        round.ballot += 1
        round.coordinator = new_leader
        round.learned = {}
        sim.leader_takeover(txn, new_leader)
        # Phase 1: recover the registered votes from the up
        # acceptors. The co-located registry merges for free; every
        # other up acceptor costs a query/response round trip.
        for acceptor in round.acceptors:
            if acceptor == new_leader:
                for site in round.accepted[acceptor]:
                    self._learn(txn, round, site, acceptor)
                    if round.decided:
                        return
            elif not sim.suspect_down(acceptor):
                # Query + response modelled as one round trip; under
                # a network model the pair rides the channel as a
                # single retransmitted unit.
                sim.result.commit_messages += 2
                sim.result.acceptor_messages += 2
                sim.transmit(
                    sim.site_id(new_leader), sim.site_id(acceptor),
                    2 * self._delay(new_leader, acceptor),
                    ("cm_state", txn, acceptor, attempt, round.ballot),
                )
        sim.schedule(
            sim.config.commit_timeout,
            ("cm_retry", txn, attempt, round.ballot),
        )

    # ------------------------------------------------------------------
    # participant / acceptor side
    # ------------------------------------------------------------------

    def _send_votes(self, txn: int, site: str, attempt: int,
                    round: _PaxosRound) -> None:
        """The participant's yes-vote goes to *every* acceptor, not
        just the leader (the inherited ``_on_prepare`` — and, under a
        durability model, the prepare-record force — is unchanged)."""
        for acceptor in round.acceptors:
            self._send_acceptor_to(
                site, acceptor,
                ("cm_vote", txn, acceptor, site, attempt),
            )

    def _on_vote(self, txn: int, acceptor: str, site: str,
                 attempt: int) -> None:
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        sim = self.sim
        if not sim.site_is_up(acceptor):
            return  # vote lost at a down acceptor; a re-vote refills it
        dur = sim.durability
        if dur is None or site in round.accepted[acceptor]:
            # No log — or a re-vote the acceptor already durably
            # registered: register/relay without a second force.
            self._register_vote(txn, round, acceptor, site, attempt)
            return
        # The acceptor forces its accept record before registering:
        # what phase 1 reads after a crash must be what was promised.
        record = ("accept", txn, attempt, site)
        if dur.flush_pending(acceptor, record):
            return  # a duplicate vote's force is still in flight
        dur.force(
            acceptor, record,
            lambda: self._accept_if_current(txn, acceptor, site, attempt),
        )

    def _register_vote(self, txn: int, round: _PaxosRound,
                       acceptor: str, site: str, attempt: int) -> None:
        round.accepted[acceptor].add(site)
        if acceptor == round.coordinator:
            # Registrar and leader share a site: the relay is internal.
            self._learn(txn, round, site, acceptor)
        else:
            self._send_acceptor_to(
                acceptor, round.coordinator,
                ("cm_learn", txn, acceptor, site, attempt),
            )

    def _accept_if_current(self, txn: int, acceptor: str, site: str,
                           attempt: int) -> None:
        """Accept-flush continuation: register if the round stands."""
        round = self._rounds.get(txn)
        if round is None or round.attempt != attempt or round.decided:
            return
        if not self.sim.site_is_up(acceptor):
            return  # pragma: no cover - a crash cancels the flush
        self._register_vote(txn, round, acceptor, site, attempt)

    # ------------------------------------------------------------------
    # durability hooks
    # ------------------------------------------------------------------

    def on_durability_wipe(self, site: str) -> None:
        """An amnesia crash emptied ``site``'s log: its acceptor
        registries are gone with it — the redundancy the 2F+1 bank
        exists to absorb (a majority of honest registries still
        decides correctly)."""
        for round in self._rounds.values():
            accepted = round.accepted.get(site)
            if accepted:
                accepted.clear()
