"""Presumed-abort two-phase commit.

The standard 2PC optimisation (Mohan, Lindsay & Obermarck): the
coordinator logs nothing about an aborting round and tells nobody —
when a participant later asks about a transaction the coordinator has
no record of, the answer is "presume abort". In the simulator's
cost model this removes the entire abort round: no ABORT messages and
no acknowledgements, so under failure injection (where vote timeouts
abort rounds) presumed-abort sends strictly fewer messages than
presumed-nothing 2PC while making the same decisions at the same
times. The commit path is unchanged — commits must still be
acknowledged before the coordinator can forget the transaction.

Forced-log-write savings — the other half of the optimisation — are
modelled too once a durability model is attached
(``SimulationConfig.durability``): with ``notify_on_abort = False``
the coordinator skips the forced abort record that plain 2PC pays a
``flush_time`` for (absent records *are* the abort decision), and a
recovered in-doubt participant's ``cm_inquire`` about an unknown
transaction is answered "abort" straight from that absence. Without a
durability model there is no disk and only the message savings apply.
"""

from __future__ import annotations

from repro.sim.commit.base import register_protocol
from repro.sim.commit.twophase import TwoPhaseCommit

__all__ = ["PresumedAbortCommit"]


@register_protocol
class PresumedAbortCommit(TwoPhaseCommit):
    """2PC whose abort path is free of messages."""

    name = "presumed-abort"
    notify_on_abort = False
