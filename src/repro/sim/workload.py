"""Random workload generation: schemas, transactions, systems.

The generator builds *valid* distributed transactions by construction:

1. choose the accessed entities and, per entity, an optional number of
   action steps;
2. lay the per-entity chains ``Lx (A.x)* Ux`` down in a random riffle —
   this reference sequence is a legal total order;
3. emit per-site chains (the reference order restricted to each site)
   as arcs, which satisfies the per-site total-order requirement;
4. sprinkle extra cross-site arcs consistent with the reference order
   (probability ``cross_arc_p``), making the partial order tighter.

Because every arc follows the reference order, the result is acyclic
and has the reference sequence as a linear extension. ``shape``
controls the locking style:

* ``"random"`` — arbitrary riffle of the entity chains;
* ``"two_phase"`` — all Locks before any Unlock (2PL);
* ``"sequential"`` — the transaction is the reference total order
  itself (a centralized-style transaction);
* ``"ordered_2pl"`` — 2PL with Locks acquired in the global entity
  order: statically safe and deadlock-free by construction.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from functools import lru_cache
from itertools import accumulate

from repro.core.entity import DatabaseSchema, Entity
from repro.core.operations import Operation, OpKind
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction

__all__ = [
    "CompiledWorkload",
    "WorkloadSpec",
    "random_schema",
    "random_system",
    "random_transaction",
]

_SHAPES = ("random", "two_phase", "sequential", "ordered_2pl")


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a random workload.

    Attributes:
        n_transactions: number of transactions.
        n_entities: size of the entity pool.
        n_sites: number of sites the pool is spread over.
        entities_per_txn: inclusive (lo, hi) range of entities accessed.
        actions_per_entity: inclusive (lo, hi) range of A-steps per
            accessed entity.
        cross_arc_p: probability of each admissible extra cross-site arc.
        shape: locking style (see module docstring).
        hotspot_skew: 0 = uniform entity choice; larger values
            concentrate accesses on low-numbered entities
            (P(i) ∝ 1/(1+i)^skew).
        read_fraction: probability that an accessed entity is only
            *read* (shared lock on one/a quorum of replicas) rather
            than written (exclusive locks). 0 (the default) keeps the
            paper's all-exclusive model and draws no extra randomness,
            so historical workloads are reproduced bit for bit.
        replication_factor: copies of each entity, spread over distinct
            sites by :class:`~repro.sim.replication.ReplicatedSchema`
            (clamped to the site count). 1 (the default) is the
            paper's single-copy model.
    """

    n_transactions: int = 4
    n_entities: int = 8
    n_sites: int = 3
    entities_per_txn: tuple[int, int] = (2, 4)
    actions_per_entity: tuple[int, int] = (0, 1)
    cross_arc_p: float = 0.25
    shape: str = "random"
    hotspot_skew: float = 0.0
    read_fraction: float = 0.0
    replication_factor: int = 1

    def __post_init__(self) -> None:
        if self.shape not in _SHAPES:
            raise ValueError(
                f"unknown shape {self.shape!r}; choose from {_SHAPES}"
            )
        if self.n_transactions < 0:
            raise ValueError(
                f"n_transactions must be >= 0, got {self.n_transactions}"
            )
        if self.n_entities < 1:
            raise ValueError(f"n_entities must be >= 1, got {self.n_entities}")
        if self.n_sites < 1:
            raise ValueError(f"n_sites must be >= 1, got {self.n_sites}")
        for label, (lo, hi) in (
            ("entities_per_txn", self.entities_per_txn),
            ("actions_per_entity", self.actions_per_entity),
        ):
            if lo < 0:
                raise ValueError(
                    f"{label} bounds must be non-negative, got ({lo}, {hi})"
                )
            if lo > hi:
                raise ValueError(
                    f"{label} range ({lo}, {hi}) is empty: lo > hi"
                )
        if not 0.0 <= self.cross_arc_p <= 1.0:
            raise ValueError(
                f"cross_arc_p must be in [0, 1], got {self.cross_arc_p}"
            )
        if self.hotspot_skew < 0:
            raise ValueError(
                f"hotspot_skew must be >= 0, got {self.hotspot_skew}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        if self.replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, "
                f"got {self.replication_factor}"
            )


def random_schema(
    rng: random.Random, n_entities: int, n_sites: int
) -> DatabaseSchema:
    """Spread ``n_entities`` entities over ``n_sites`` sites.

    Every site receives at least one entity when possible; the remainder
    is assigned uniformly.
    """
    entities = [f"e{i}" for i in range(n_entities)]
    sites = [f"s{i}" for i in range(min(n_sites, n_entities))]
    placement: dict[Entity, str] = {}
    shuffled = entities[:]
    rng.shuffle(shuffled)
    for i, site in enumerate(sites):
        placement[shuffled[i]] = site
    for entity in shuffled[len(sites):]:
        placement[entity] = rng.choice(sites)
    return DatabaseSchema(placement)


@lru_cache(maxsize=64)
def _hotspot_weights(n: int, skew: float) -> tuple[float, ...]:
    """Zipf-style weights, memoized (recomputed per arrival otherwise)."""
    return tuple(1.0 / (1 + i) ** skew for i in range(n))


def _pick_entities(
    rng: random.Random, spec: WorkloadSpec, pool: list[Entity]
) -> list[Entity]:
    lo, hi = spec.entities_per_txn
    count = min(rng.randint(lo, hi), len(pool))
    if spec.hotspot_skew <= 0:
        return rng.sample(pool, count)
    weights = _hotspot_weights(len(pool), spec.hotspot_skew)
    chosen: list[Entity] = []
    candidates = list(zip(pool, weights))
    for _ in range(count):
        total = sum(w for _e, w in candidates)
        point = rng.uniform(0, total)
        acc = 0.0
        for index, (entity, weight) in enumerate(candidates):
            acc += weight
            if point <= acc:
                chosen.append(entity)
                del candidates[index]
                break
    return chosen


def _reference_sequence(
    rng: random.Random,
    spec: WorkloadSpec,
    entities: list[Entity],
) -> list[Operation]:
    """A legal total order over the chosen entities' operations."""
    lo, hi = spec.actions_per_entity
    chains = {}
    for entity in entities:
        n_actions = rng.randint(lo, hi)
        chains[entity] = (
            [Operation.lock(entity)]
            + [Operation.action(entity) for _ in range(n_actions)]
            + [Operation.unlock(entity)]
        )

    if spec.shape in ("two_phase", "ordered_2pl"):
        ordered = sorted(entities) if spec.shape == "ordered_2pl" else (
            rng.sample(entities, len(entities))
        )
        sequence = [Operation.lock(entity) for entity in ordered]
        middles = [op for e in ordered for op in chains[e][1:-1]]
        rng.shuffle(middles)
        sequence.extend(middles)
        release = ordered[:]
        if spec.shape != "ordered_2pl":
            rng.shuffle(release)
        sequence.extend(
            Operation.unlock(entity) for entity in reversed(release)
        )
        return sequence

    # Random riffle of the per-entity chains.
    cursors = {entity: 0 for entity in entities}
    remaining = [entity for entity in entities for _ in chains[entity]]
    rng.shuffle(remaining)
    sequence = []
    for entity in remaining:
        sequence.append(chains[entity][cursors[entity]])
        cursors[entity] += 1
    return sequence


def _structural_arcs(
    spec: WorkloadSpec, sequence: list[Operation]
) -> list[tuple[int, int]]:
    """Arcs that make the *partial order* match the declared shape.

    The per-site chains alone leave cross-site operations unordered, so
    a "two-phase" reference sequence would not yield a two-phase partial
    order (an Unlock at one site could run before a Lock at another).
    For the 2PL shapes we therefore add every Lock -> Unlock arc, and
    for ``ordered_2pl`` we additionally chain the Locks in the global
    entity order — making the lock-ordering prevention argument hold
    across sites, not just within them.
    """
    arcs: list[tuple[int, int]] = []
    if spec.shape not in ("two_phase", "ordered_2pl"):
        return arcs
    lock_ids = [
        i for i, op in enumerate(sequence) if op.kind is OpKind.LOCK
    ]
    unlock_ids = [
        i for i, op in enumerate(sequence) if op.kind is OpKind.UNLOCK
    ]
    arcs.extend((u, v) for u in lock_ids for v in unlock_ids)
    if spec.shape == "ordered_2pl":
        arcs.extend(zip(lock_ids, lock_ids[1:]))
    return arcs


def random_transaction(
    name: str,
    rng: random.Random,
    schema: DatabaseSchema,
    spec: WorkloadSpec,
    entities: list[Entity] | None = None,
) -> Transaction:
    """Generate one random valid transaction over ``schema``.

    Args:
        name: transaction name.
        rng: seeded randomness source.
        schema: entity placement; accessed entities are drawn from it.
        spec: workload parameters.
        entities: fix the accessed entities instead of sampling them.
    """
    pool = list(schema.entities_sorted())
    accessed = entities if entities is not None else _pick_entities(
        rng, spec, pool
    )
    if not accessed:
        accessed = [rng.choice(pool)]
    # Reads are drawn before the sequence so the RNG stream position is
    # well defined; read_fraction == 0 draws nothing, which is what
    # keeps historical all-write workloads bit-identical.
    read_set: frozenset[Entity] = frozenset()
    if spec.read_fraction > 0:
        read_set = frozenset(
            entity
            for entity in accessed
            if rng.random() < spec.read_fraction
        )
    sequence = _reference_sequence(rng, spec, list(accessed))

    if spec.shape == "sequential":
        return Transaction.sequential(name, sequence, schema, read_set)

    # Per-site chains from the reference order. The per-node site list
    # is computed once: the cross-arc double loop below used to call
    # schema.site_of twice per pair.
    op_sites = [schema.site_of(op.entity) for op in sequence]
    arcs: list[tuple[int, int]] = []
    last_at_site: dict[str, int] = {}
    for index, site in enumerate(op_sites):
        if site in last_at_site:
            arcs.append((last_at_site[site], index))
        last_at_site[site] = index

    # Extra cross-site arcs consistent with the reference order (the
    # RNG is drawn for each cross-site pair in (u, v) order — the draw
    # sequence is part of the workload's identity, so the loop shape
    # must not change).
    for u in range(len(sequence)):
        site_u = op_sites[u]
        for v in range(u + 1, len(sequence)):
            if site_u != op_sites[v] and rng.random() < spec.cross_arc_p:
                arcs.append((u, v))

    # Shape-defining arcs (2PL closure, global lock chain).
    arcs.extend(_structural_arcs(spec, sequence))

    # The Lock -> Unlock arc is implied by the same-site chain when the
    # entity's nodes are colocated (they always are — same entity), so
    # the construction is already well formed.
    return Transaction(name, sequence, arcs, schema, read_set)


class CompiledWorkload:
    """One spec's generation tables, precomputed once per run.

    ``random_transaction`` recomputes several spec/schema constants on
    every call — the sorted entity pool, the hotspot weights, each
    operation label, every ``site_of`` lookup — which dominates
    per-arrival cost in open-system runs. Compiling the spec hoists all
    of it: the pool and weights become shared tuples, the per-entity
    ``Lx``/``A.x``/``Ux`` :class:`Operation` objects are built once and
    reused (they are immutable), and entity-to-site routing is one dict
    hit. :meth:`generate` then draws from the RNG in *exactly* the
    sequence ``random_transaction`` does — the draw stream is part of a
    workload's identity, so a compiled generator reproduces the naive
    one bit for bit — and assembles the result through
    ``Transaction.trusted`` (the construction invariants hold by the
    same argument as for ``random_transaction``, so re-validation would
    only re-prove them).
    """

    __slots__ = (
        "spec", "schema", "pool", "weights", "site_of", "lock_op",
        "unlock_op", "action_op",
    )

    def __init__(self, spec: WorkloadSpec, schema: DatabaseSchema):
        self.spec = spec
        self.schema = schema
        self.pool: list[Entity] = list(schema.entities_sorted())
        self.weights: tuple[float, ...] | None = (
            _hotspot_weights(len(self.pool), spec.hotspot_skew)
            if spec.hotspot_skew > 0
            else None
        )
        self.site_of: dict[Entity, str] = {
            entity: schema.site_of(entity) for entity in self.pool
        }
        self.lock_op = {e: Operation.lock(e) for e in self.pool}
        self.unlock_op = {e: Operation.unlock(e) for e in self.pool}
        self.action_op = {e: Operation.action(e) for e in self.pool}

    # ------------------------------------------------------------------
    # draw-identical ports of the module-level helpers
    # ------------------------------------------------------------------

    def _pick_entities(self, rng: random.Random) -> list[Entity]:
        # Mirrors module-level _pick_entities. The linear accumulate
        # scan becomes prefix sums + bisect: the prefix sums are the
        # same left-to-right float additions the scan performed, and
        # bisect_left finds the first index with ``point <=
        # prefix[index]`` — the scan's stopping rule — so every pick
        # (and every draw) is bit-identical.
        pool = self.pool
        lo, hi = self.spec.entities_per_txn
        count = min(rng.randint(lo, hi), len(pool))
        weights = self.weights
        if weights is None:
            return rng.sample(pool, count)
        cand_e = list(pool)
        cand_w = list(weights)
        chosen: list[Entity] = []
        uniform = rng.uniform
        for _ in range(count):
            prefix = list(accumulate(cand_w))
            point = uniform(0, prefix[-1])
            index = bisect_left(prefix, point)
            if index < len(cand_e):
                chosen.append(cand_e[index])
                del cand_e[index]
                del cand_w[index]
        return chosen

    def _reference_sequence(
        self, rng: random.Random, entities: list[Entity]
    ) -> list[Operation]:
        # Mirrors module-level _reference_sequence with precompiled
        # Operation objects (reused — they are immutable).
        spec = self.spec
        lo, hi = spec.actions_per_entity
        lock_op = self.lock_op
        unlock_op = self.unlock_op
        action_op = self.action_op
        chains = {}
        for entity in entities:
            n_actions = rng.randint(lo, hi)
            chain = [lock_op[entity]]
            if n_actions:
                chain.extend([action_op[entity]] * n_actions)
            chain.append(unlock_op[entity])
            chains[entity] = chain

        if spec.shape in ("two_phase", "ordered_2pl"):
            ordered = sorted(entities) if spec.shape == "ordered_2pl" else (
                rng.sample(entities, len(entities))
            )
            sequence = [lock_op[entity] for entity in ordered]
            middles = [op for e in ordered for op in chains[e][1:-1]]
            rng.shuffle(middles)
            sequence.extend(middles)
            release = ordered[:]
            if spec.shape != "ordered_2pl":
                rng.shuffle(release)
            sequence.extend(
                unlock_op[entity] for entity in reversed(release)
            )
            return sequence

        # Per-entity iterators replace the cursor dict: next() on a
        # list iterator is one C call, and each chain is consumed
        # exactly once in order — the same sequence the cursor walk
        # produced.
        cursors = {entity: iter(chains[entity]) for entity in entities}
        remaining = [entity for entity in entities for _ in chains[entity]]
        rng.shuffle(remaining)
        return [next(cursors[entity]) for entity in remaining]

    def generate(self, name: str, rng: random.Random) -> Transaction:
        """One arrival's transaction; equal to ``random_transaction``'s.

        Given the same ``rng`` state, the result compares equal to
        ``random_transaction(name, rng, self.schema, self.spec)`` —
        ops, arcs, schema, read set, and site grouping included (the
        property suite pins this).
        """
        spec = self.spec
        accessed = self._pick_entities(rng)
        if not accessed:
            accessed = [rng.choice(self.pool)]
        read_set: frozenset[Entity] = frozenset()
        if spec.read_fraction > 0:
            read_fraction = spec.read_fraction
            read_set = frozenset(
                entity
                for entity in accessed
                if rng.random() < read_fraction
            )
        sequence = self._reference_sequence(rng, list(accessed))

        if spec.shape == "sequential":
            arcs = [(i, i + 1) for i in range(len(sequence) - 1)]
            return Transaction.trusted(
                name, sequence, arcs, self.schema, read_set
            )

        site_of = self.site_of
        op_sites = [site_of[op.entity] for op in sequence]
        arcs = []
        append_arc = arcs.append
        last_at_site: dict[str, int] = {}
        for index, site in enumerate(op_sites):
            prev = last_at_site.get(site)
            if prev is not None:
                append_arc((prev, index))
            last_at_site[site] = index

        # Cross-site arcs: one draw per cross-site (u, v) pair, in
        # (u, v) order — the draw sequence is workload identity.
        cross_p = spec.cross_arc_p
        random_draw = rng.random
        n_ops = len(sequence)
        for u in range(n_ops):
            site_u = op_sites[u]
            for v in range(u + 1, n_ops):
                if site_u != op_sites[v] and random_draw() < cross_p:
                    append_arc((u, v))

        arcs.extend(_structural_arcs(spec, sequence))
        return Transaction.trusted(
            name, sequence, arcs, self.schema, read_set, op_sites
        )


def random_system(
    rng: random.Random, spec: WorkloadSpec | None = None
) -> TransactionSystem:
    """Generate a random transaction system per ``spec``."""
    spec = spec or WorkloadSpec()
    schema = random_schema(rng, spec.n_entities, spec.n_sites)
    transactions = [
        random_transaction(f"T{i + 1}", rng, schema, spec)
        for i in range(spec.n_transactions)
    ]
    return TransactionSystem(transactions)
