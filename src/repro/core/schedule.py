"""Schedules: lock-respecting merges of transaction (prefix) executions.

Section 2: a sequence S is a *schedule* of A = {T1,...,Tn} if it merges
one linear extension of each transaction and between every two ``Lx``
operations there is a ``Ux``. A *partial schedule* executes a prefix of
each transaction under the same rules (Section 3).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.entity import Entity
from repro.core.operations import OpKind
from repro.core.prefix import SystemPrefix
from repro.core.system import GlobalNode, TransactionSystem

__all__ = ["IllegalScheduleError", "Schedule"]


class IllegalScheduleError(ValueError):
    """The step sequence violates precedence or the locks."""


class Schedule:
    """A validated (partial) schedule of a transaction system.

    Args:
        system: the transaction system.
        steps: global nodes in execution order.

    Raises:
        IllegalScheduleError: if a step repeats, violates its transaction's
            partial order, or locks an entity currently held by another
            transaction.
    """

    __slots__ = ("system", "steps", "_masks")

    def __init__(
        self,
        system: TransactionSystem,
        steps: Sequence[GlobalNode | tuple[int, int]],
    ):
        self.system = system
        normalized = [GlobalNode(*step) for step in steps]
        masks = [0] * len(system)
        holder: dict[Entity, int] = {}
        for position, gnode in enumerate(normalized):
            txn, node = gnode
            if not 0 <= txn < len(system):
                raise IllegalScheduleError(
                    f"step {position}: transaction index {txn} out of range"
                )
            t = system[txn]
            if not 0 <= node < t.node_count:
                raise IllegalScheduleError(
                    f"step {position}: node {node} out of range for {t.name}"
                )
            if masks[txn] >> node & 1:
                raise IllegalScheduleError(
                    f"step {position}: {system.describe_node(gnode)} "
                    f"executed twice"
                )
            if t.dag.ancestors(node) & ~masks[txn]:
                raise IllegalScheduleError(
                    f"step {position}: {system.describe_node(gnode)} runs "
                    f"before one of its predecessors in {t.name}"
                )
            op = t.ops[node]
            if op.kind is OpKind.LOCK:
                current = holder.get(op.entity)
                if current is not None and current != txn:
                    raise IllegalScheduleError(
                        f"step {position}: {system.describe_node(gnode)} "
                        f"while T{current + 1} holds {op.entity!r}"
                    )
                holder[op.entity] = txn
            elif op.kind is OpKind.UNLOCK:
                holder.pop(op.entity, None)
            masks[txn] |= 1 << node
        self.steps = tuple(normalized)
        self._masks = tuple(masks)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def serial(
        cls, system: TransactionSystem, order: Iterable[int] | None = None
    ) -> "Schedule":
        """The serial schedule running whole transactions in ``order``."""
        if order is None:
            order = range(len(system))
        steps: list[GlobalNode] = []
        for txn in order:
            for node in system[txn].dag.topological_order():
                steps.append(GlobalNode(txn, node))
        return cls(system, steps)

    @classmethod
    def serial_prefixes(
        cls, prefix: SystemPrefix, order: Iterable[int] | None = None
    ) -> "Schedule":
        """Run each prefix to completion serially in ``order``.

        This is the normal form S* used in the proof of Theorem 4.
        """
        system = prefix.system
        if order is None:
            order = range(len(system))
        steps: list[GlobalNode] = []
        for txn in order:
            mask = prefix.masks[txn]
            for node in system[txn].dag.topological_order():
                if mask >> node & 1:
                    steps.append(GlobalNode(txn, node))
        return cls(system, steps)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def prefix(self) -> SystemPrefix:
        """The system prefix executed by this (partial) schedule."""
        return SystemPrefix(self.system, self._masks)

    def is_complete(self) -> bool:
        return self.prefix().is_complete()

    def is_serial(self) -> bool:
        """True if the transactions appear consecutively, no interleaving."""
        seen: list[int] = []
        for gnode in self.steps:
            if not seen or seen[-1] != gnode.txn:
                if gnode.txn in seen:
                    return False
                seen.append(gnode.txn)
        return True

    def lock_sequence(self, entity: Entity) -> list[int]:
        """Transaction indices in the order they lock ``entity``."""
        order = []
        for gnode in self.steps:
            op = self.system[gnode.txn].ops[gnode.node]
            if op.kind is OpKind.LOCK and op.entity == entity:
                order.append(gnode.txn)
        return order

    def lock_sequences(self) -> dict[Entity, list[int]]:
        """All entities' lock sequences, computed in one pass.

        Equivalent to ``{e: lock_sequence(e) for e in entities}`` but
        linear in the schedule length instead of quadratic — the D(S)
        construction over the long traces of open-system runs needs
        this.
        """
        orders: dict[Entity, list[int]] = {}
        for gnode in self.steps:
            op = self.system[gnode.txn].ops[gnode.node]
            if op.kind is OpKind.LOCK:
                orders.setdefault(op.entity, []).append(gnode.txn)
        return orders

    def subsequence_of(self, txn: int) -> list[int]:
        """Node ids of transaction ``txn`` in schedule order."""
        return [g.node for g in self.steps if g.txn == txn]

    def extended(self, steps: Iterable[GlobalNode | tuple[int, int]]) -> (
            "Schedule"):
        """A new schedule with ``steps`` appended (revalidated)."""
        return Schedule(self.system, list(self.steps) + list(steps))

    def describe(self) -> str:
        """Space-separated paper-style step labels."""
        return " ".join(self.system.describe_node(g) for g in self.steps)

    def __repr__(self) -> str:
        return f"Schedule({self.describe()})"
