"""Schedules: lock-respecting merges of transaction (prefix) executions.

Section 2: a sequence S is a *schedule* of A = {T1,...,Tn} if it merges
one linear extension of each transaction and between every two ``Lx``
operations there is a ``Ux``. A *partial schedule* executes a prefix of
each transaction under the same rules (Section 3).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.entity import Entity
from repro.core.operations import OpKind
from repro.core.prefix import SystemPrefix
from repro.core.system import GlobalNode, TransactionSystem

__all__ = ["IllegalScheduleError", "Schedule"]


class IllegalScheduleError(ValueError):
    """The step sequence violates precedence or the locks."""


class Schedule:
    """A validated (partial) schedule of a transaction system.

    Args:
        system: the transaction system.
        steps: global nodes in execution order.

    Raises:
        IllegalScheduleError: if a step repeats, violates its transaction's
            partial order, or locks an entity currently held by another
            transaction.
    """

    __slots__ = (
        "system", "_raw_steps", "_steps_cache", "_masks", "_lock_orders",
    )

    def __init__(
        self,
        system: TransactionSystem,
        steps: Sequence[GlobalNode | tuple[int, int]],
    ):
        self.system = system
        # Always copy: the validated sequence must not alias a caller
        # list that could be mutated after validation.
        steps = list(steps)
        n_txns = len(system)
        masks = [0] * n_txns
        holder: dict[Entity, int] = {}
        # Entity -> lockers in lock order, recorded as a by-product of
        # the holder bookkeeping: the D(S) construction and the
        # conflict-graph test both start from exactly this table, and
        # on long open-system traces a second full pass over the steps
        # was the bigger half of their cost.
        lock_orders: dict[Entity, list[int]] = {}
        # Per-transaction hot data, fetched once per transaction
        # instead of once per step.
        preds: list[list[int] | None] = [None] * n_txns
        ops_of: list[tuple | None] = [None] * n_txns
        lock_kind = OpKind.LOCK
        unlock_kind = OpKind.UNLOCK
        for position, step in enumerate(steps):
            txn, node = step
            if not 0 <= txn < n_txns:
                raise IllegalScheduleError(
                    f"step {position}: transaction index {txn} out of range"
                )
            pred = preds[txn]
            if pred is None:
                t = system[txn]
                pred = preds[txn] = t.dag.predecessor_masks()
                ops_of[txn] = t.ops
            ops = ops_of[txn]
            if not 0 <= node < len(ops):
                raise IllegalScheduleError(
                    f"step {position}: node {node} out of range for "
                    f"{system[txn].name}"
                )
            mask = masks[txn]
            if mask >> node & 1:
                label = system.describe_node(GlobalNode(txn, node))
                raise IllegalScheduleError(
                    f"step {position}: {label} executed twice"
                )
            # Direct-predecessor check, equivalent to the historical
            # ancestors-mask check by induction: every accepted step
            # had its predecessors executed, so the executed set is
            # always a down-set, and then "some ancestor missing" and
            # "some direct predecessor missing" coincide — at the same
            # step index, which the property suite pins. This keeps
            # validation O(steps + arcs) and — via
            # ``Dag.predecessor_masks`` — free of the transitive
            # closure trusted transactions never materialize.
            if pred[node] & ~mask:
                label = system.describe_node(GlobalNode(txn, node))
                raise IllegalScheduleError(
                    f"step {position}: {label} runs "
                    f"before one of its predecessors in {system[txn].name}"
                )
            op = ops[node]
            kind = op.kind
            if kind is lock_kind:
                entity = op.entity
                current = holder.get(entity)
                if current is not None and current != txn:
                    label = system.describe_node(GlobalNode(txn, node))
                    raise IllegalScheduleError(
                        f"step {position}: {label} "
                        f"while T{current + 1} holds {entity!r}"
                    )
                holder[entity] = txn
                order = lock_orders.get(entity)
                if order is None:
                    lock_orders[entity] = [txn]
                else:
                    order.append(txn)
            elif kind is unlock_kind:
                holder.pop(op.entity, None)
            masks[txn] = mask | (1 << node)
        # The validated raw sequence; GlobalNode normalization happens
        # lazily in :attr:`steps` — the end-of-run serializability
        # verdict over a long open-system trace validates hundreds of
        # thousands of steps and then only ever reads masks and lock
        # orders, so wrapping every step up front was pure overhead.
        self._raw_steps = steps
        self._steps_cache: tuple[GlobalNode, ...] | None = None
        self._masks = tuple(masks)
        self._lock_orders = lock_orders

    @property
    def steps(self) -> tuple[GlobalNode, ...]:
        """The validated steps as :class:`GlobalNode` tuples."""
        cached = self._steps_cache
        if cached is None:
            make = GlobalNode._make
            cached = self._steps_cache = tuple(
                step if step.__class__ is GlobalNode else make(step)
                for step in self._raw_steps
            )
            self._raw_steps = None
        return cached

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def serial(
        cls, system: TransactionSystem, order: Iterable[int] | None = None
    ) -> "Schedule":
        """The serial schedule running whole transactions in ``order``."""
        if order is None:
            order = range(len(system))
        steps: list[GlobalNode] = []
        for txn in order:
            for node in system[txn].dag.topological_order():
                steps.append(GlobalNode(txn, node))
        return cls(system, steps)

    @classmethod
    def serial_prefixes(
        cls, prefix: SystemPrefix, order: Iterable[int] | None = None
    ) -> "Schedule":
        """Run each prefix to completion serially in ``order``.

        This is the normal form S* used in the proof of Theorem 4.
        """
        system = prefix.system
        if order is None:
            order = range(len(system))
        steps: list[GlobalNode] = []
        for txn in order:
            mask = prefix.masks[txn]
            for node in system[txn].dag.topological_order():
                if mask >> node & 1:
                    steps.append(GlobalNode(txn, node))
        return cls(system, steps)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        raw = self._raw_steps
        return len(raw) if raw is not None else len(self._steps_cache)

    def __iter__(self):
        return iter(self.steps)

    def prefix(self) -> SystemPrefix:
        """The system prefix executed by this (partial) schedule.

        The masks are down-sets by construction — validation accepted
        every step only after its predecessors — so the prefix is built
        on the trusted path, without re-proving that per transaction.
        """
        return SystemPrefix.trusted(self.system, self._masks)

    def is_complete(self) -> bool:
        return self.prefix().is_complete()

    def is_serial(self) -> bool:
        """True if the transactions appear consecutively, no interleaving."""
        seen: list[int] = []
        for gnode in self.steps:
            if not seen or seen[-1] != gnode.txn:
                if gnode.txn in seen:
                    return False
                seen.append(gnode.txn)
        return True

    def lock_sequence(self, entity: Entity) -> list[int]:
        """Transaction indices in the order they lock ``entity``."""
        return list(self._lock_orders.get(entity, ()))

    def lock_sequences(self) -> dict[Entity, list[int]]:
        """All entities' lock sequences (a fresh copy).

        Equivalent to ``{e: lock_sequence(e) for e in entities}``; the
        table itself was recorded while the schedule validated, so this
        is a copy, not a rescan — the D(S) construction over the long
        traces of open-system runs leans on that.
        """
        return {
            entity: list(order)
            for entity, order in self._lock_orders.items()
        }

    def lock_sequences_view(self) -> dict[Entity, list[int]]:
        """The lock-order table itself (borrowed; do not mutate).

        For read-only hot-path consumers — the serializability verdict
        iterates every per-entity locker list exactly once, and the
        defensive copies of :meth:`lock_sequences` were its largest
        remaining allocation.
        """
        return self._lock_orders

    def subsequence_of(self, txn: int) -> list[int]:
        """Node ids of transaction ``txn`` in schedule order."""
        return [g.node for g in self.steps if g.txn == txn]

    def extended(self, steps: Iterable[GlobalNode | tuple[int, int]]) -> (
            "Schedule"):
        """A new schedule with ``steps`` appended (revalidated)."""
        return Schedule(self.system, list(self.steps) + list(steps))

    def describe(self) -> str:
        """Space-separated paper-style step labels."""
        return " ".join(self.system.describe_node(g) for g in self.steps)

    def __repr__(self) -> str:
        return f"Schedule({self.describe()})"
