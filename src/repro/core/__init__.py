"""The paper's model: entities/sites, transactions, systems, schedules,
prefixes, reduction graphs, serialization digraphs."""

from repro.core.entity import DatabaseSchema, Entity, Site
from repro.core.operations import Operation, OpKind
from repro.core.prefix import SystemPrefix, prefix_mask_from_labels
from repro.core.reduction import (
    is_deadlock_partial_schedule,
    is_deadlock_prefix,
    prefix_has_schedule,
    reduction_graph,
)
from repro.core.schedule import IllegalScheduleError, Schedule
from repro.core.serialization import (
    d_graph,
    equivalent_serial_order,
    is_serializable,
)
from repro.core.system import GlobalNode, TransactionSystem
from repro.core.transaction import (
    MalformedTransactionError,
    Transaction,
    TransactionBuilder,
)

__all__ = [
    "DatabaseSchema",
    "Entity",
    "GlobalNode",
    "IllegalScheduleError",
    "MalformedTransactionError",
    "OpKind",
    "Operation",
    "Schedule",
    "Site",
    "SystemPrefix",
    "Transaction",
    "TransactionBuilder",
    "TransactionSystem",
    "d_graph",
    "equivalent_serial_order",
    "is_deadlock_partial_schedule",
    "is_deadlock_prefix",
    "is_serializable",
    "prefix_has_schedule",
    "prefix_mask_from_labels",
    "reduction_graph",
]
