"""The reduction graph R(A') and the deadlock-prefix characterization.

Section 3: given a prefix A' of a system A that has a schedule, the
*reduction graph* R(A') is built on the remaining (unexecuted) nodes:

* all arcs of the remaining parts of the transactions, and
* for each entity ``x`` locked-but-not-unlocked in A' by transaction Ti,
  arcs from ``Ui x`` to every remaining ``Lj x`` of the other
  transactions (Tj must unlock-wait behind Ti).

A' is a *deadlock prefix* if it has a schedule and R(A') is cyclic.
Theorem 1: a system is deadlock-free iff it has no deadlock prefix.

The reduction graph generalizes the classical waits-for graph: a cycle
certifies that the partial schedule can never be completed, even before
every participant is physically blocked.
"""

from __future__ import annotations

from repro.core.operations import OpKind
from repro.core.prefix import SystemPrefix
from repro.core.schedule import Schedule
from repro.core.system import GlobalNode, TransactionSystem
from repro.util.bitset import bits_of
from repro.util.graphs import Digraph

__all__ = [
    "is_deadlock_partial_schedule",
    "is_deadlock_prefix",
    "prefix_has_schedule",
    "reduction_graph",
]


def reduction_graph(prefix: SystemPrefix) -> Digraph:
    """Build R(A') for a lock-consistent prefix.

    Raises:
        ValueError: if two prefixes hold the same entity (no schedule can
            have produced such a prefix, so R is undefined).
    """
    system = prefix.system
    holders = prefix.holders()  # raises on double-hold
    graph = Digraph()

    # Remaining transaction arcs. Because prefixes are down-sets, the
    # restriction of the direct arcs to remaining nodes preserves every
    # remaining path.
    for i, t in enumerate(system.transactions):
        remaining = prefix.remaining_mask(i)
        for u in bits_of(remaining):
            graph.add_node(GlobalNode(i, u))
        for u, v in t.dag.arcs:
            if remaining >> u & 1 and remaining >> v & 1:
                graph.add_arc(GlobalNode(i, u), GlobalNode(i, v))

    # Cross arcs U_i x -> L_j x for held entities.
    for entity, i in holders.items():
        unlock_gnode = GlobalNode(i, system[i].unlock_node(entity))
        for j in system.accessors(entity):
            if j == i:
                continue
            lock_node = system[j].lock_node(entity)
            if not prefix.masks[j] >> lock_node & 1:
                graph.add_arc(
                    unlock_gnode, GlobalNode(j, lock_node), label=entity
                )
    return graph


def prefix_has_schedule(prefix: SystemPrefix) -> Schedule | None:
    """Search for a schedule executing exactly this prefix.

    Not every prefix has one (§3): the locks may make the exact node sets
    unreachable. The search explores interleavings of the prefix nodes
    respecting precedence and locks, memoizing visited states; worst case
    exponential in the prefix size, fine for analysis-sized prefixes.

    Returns:
        A witness :class:`Schedule`, or None if the prefix is unreachable.
    """
    system = prefix.system
    n = len(system)
    target = prefix.masks
    start = tuple([0] * n)
    # parent pointers for witness reconstruction
    seen: dict[tuple[int, ...], tuple[tuple[int, ...], GlobalNode] | None] = {
        start: None
    }
    stack = [start]
    while stack:
        state = stack.pop()
        if state == target:
            steps: list[GlobalNode] = []
            cursor = state
            while seen[cursor] is not None:
                prev, gnode = seen[cursor]  # type: ignore[misc]
                steps.append(gnode)
                cursor = prev
            steps.reverse()
            return Schedule(system, steps)
        # who holds what in this state
        holder: dict[str, int] = {}
        for i, t in enumerate(system.transactions):
            mask = state[i]
            for entity in t.entities:
                if (
                    mask >> t.lock_node(entity) & 1
                    and not mask >> t.unlock_node(entity) & 1
                ):
                    holder[entity] = i
        for i, t in enumerate(system.transactions):
            executable = target[i] & ~state[i]
            for u in bits_of(executable):
                if t.dag.ancestors(u) & ~state[i]:
                    continue  # a predecessor has not run yet
                op = t.ops[u]
                if op.kind is OpKind.LOCK:
                    current = holder.get(op.entity)
                    if current is not None and current != i:
                        continue  # blocked
                nxt = list(state)
                nxt[i] |= 1 << u
                key = tuple(nxt)
                if key not in seen:
                    seen[key] = (state, GlobalNode(i, u))
                    stack.append(key)
    return None


def is_deadlock_prefix(prefix: SystemPrefix) -> bool:
    """Definition of §3: the prefix has a schedule and R(A') is cyclic."""
    if not prefix.is_lock_consistent():
        return False
    graph = reduction_graph(prefix)
    if graph.is_acyclic():
        return False
    return prefix_has_schedule(prefix) is not None


def is_deadlock_partial_schedule(schedule: Schedule) -> bool:
    """Check the §3 definition of a deadlock partial schedule.

    For every transaction, the only remaining nodes without predecessors
    must be Lock operations requesting entities locked-but-not-unlocked by
    some *other* prefix — i.e. nobody can take a step, yet somebody must.
    """
    prefix = schedule.prefix()
    if prefix.is_complete():
        return False
    system = schedule.system
    holders = prefix.holders()
    for i, t in enumerate(system.transactions):
        remaining = prefix.remaining_mask(i)
        candidates = t.dag.minimal_nodes(remaining)
        for u in bits_of(candidates):
            op = t.ops[u]
            if op.kind is not OpKind.LOCK:
                return False
            holder = holders.get(op.entity)
            if holder is None or holder == i:
                return False
    return True
