"""Transaction systems and their interaction graphs.

A *transaction system* A = {T1, ..., Tn} is a finite set of transactions
(Section 2). Nodes are addressed globally by :class:`GlobalNode` — the
paper's superscript notation ``L¹x`` becomes ``GlobalNode(txn=0, node=...)``
rendered as ``"L1x"``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import NamedTuple

from repro.core.entity import DatabaseSchema, Entity
from repro.core.transaction import Transaction

__all__ = ["GlobalNode", "TransactionSystem"]


class GlobalNode(NamedTuple):
    """A node of a specific transaction inside a system."""

    txn: int
    node: int


class TransactionSystem:
    """An immutable set of transactions over a merged schema.

    Args:
        transactions: the member transactions; names must be distinct.
        schema: optional pre-merged schema covering every member
            transaction consistently. When given, the per-transaction
            schema merge is skipped entirely — the caller vouches for
            the placement (the open-system runtime passes the run
            schema it already merged at construction, turning the
            freeze of a long run from one merge per transaction into
            O(1)).

    Raises:
        ValueError: on duplicate names or conflicting entity placement.
    """

    __slots__ = ("transactions", "schema", "_accessors")

    def __init__(
        self,
        transactions: Sequence[Transaction],
        schema: DatabaseSchema | None = None,
    ):
        names = [t.name for t in transactions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate transaction names in {names}")
        self.transactions = tuple(transactions)
        first_schema = transactions[0].schema if transactions else None
        if schema is not None:
            pass
        elif first_schema is not None and all(
            t.schema is first_schema for t in transactions
        ):
            # One shared schema object (the generated-workload and
            # open-system case): the merge is the identity, and n
            # schema rebuilds vanish from system construction.
            schema = first_schema
        else:
            schema = DatabaseSchema({})
            for t in transactions:
                schema = schema.merged_with(t.schema)
        self.schema = schema
        accessors: dict[Entity, list[int]] = {}
        for i, t in enumerate(transactions):
            for entity in t.entities:
                accessors.setdefault(entity, []).append(i)
        self._accessors = {
            entity: tuple(indices) for entity, indices in accessors.items()
        }

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def of_copies(cls, transaction: Transaction, count: int) -> (
            "TransactionSystem"):
        """A system of ``count`` copies of one transaction.

        Copies share the same entities (the paper's Theorem 5 setting);
        they are distinguished only by name suffixes.
        """
        copies = [
            transaction.renamed(f"{transaction.name}#{i + 1}")
            for i in range(count)
        ]
        return cls(copies)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self.transactions[index]

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    @property
    def entities(self) -> frozenset[Entity]:
        return frozenset(self._accessors)

    def accessors(self, entity: Entity) -> tuple[int, ...]:
        """Indices of transactions accessing ``entity``."""
        return self._accessors.get(entity, ())

    def common_entities(self, i: int, j: int) -> frozenset[Entity]:
        """R(Ti) ∩ R(Tj)."""
        return self.transactions[i].entities & self.transactions[j].entities

    def interaction_edges(self) -> set[tuple[int, int]]:
        """Edges of the interaction graph G(A): pairs sharing an entity."""
        edges: set[tuple[int, int]] = set()
        for indices in self._accessors.values():
            for a in range(len(indices)):
                for b in range(a + 1, len(indices)):
                    edges.add((indices[a], indices[b]))
        return edges

    def interaction_neighbors(self) -> dict[int, set[int]]:
        """Adjacency map of the interaction graph."""
        adjacency: dict[int, set[int]] = {
            i: set() for i in range(len(self.transactions))
        }
        for a, b in self.interaction_edges():
            adjacency[a].add(b)
            adjacency[b].add(a)
        return adjacency

    def describe_node(self, gnode: GlobalNode) -> str:
        """Paper-style node label, e.g. ``"L1z"`` for L¹z."""
        op = self.transactions[gnode.txn].ops[gnode.node]
        prefix = op.kind.value
        if op.kind.value == "A":
            return f"A{gnode.txn + 1}.{op.entity}"
        return f"{prefix}{gnode.txn + 1}{op.entity}"

    def total_nodes(self) -> int:
        return sum(t.node_count for t in self.transactions)

    def lock_skeleton(self) -> "TransactionSystem":
        """The system of lock skeletons (actions stripped)."""
        return TransactionSystem([t.lock_skeleton() for t in self.transactions])

    def __repr__(self) -> str:
        names = ", ".join(t.name for t in self.transactions)
        return f"TransactionSystem([{names}])"
