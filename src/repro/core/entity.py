"""Entities, sites, and the distributed database schema.

Following Section 2 of the paper, a distributed database (DDB) is a finite
set of *entities* partitioned into pairwise-disjoint *sites*. The schema
here is that single-copy partition; each entity's site is its *primary*
placement. Replication is layered on top by the simulator
(:mod:`repro.sim.replication`): a ``ReplicatedSchema`` maps each logical
entity to a replica set of sites, and a replica-control protocol decides
which copies a transaction must lock — the static theory continues to
reason over the primary placement below.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

__all__ = ["DatabaseSchema", "Entity", "Site"]

# Entities and sites are plain strings; the schema object carries the
# partition. Keeping them as str makes user code and the text format easy.
Entity = str
Site = str


class DatabaseSchema:
    """The partition of entities into sites.

    Args:
        placement: mapping from entity name to the site that stores it.

    Raises:
        ValueError: on empty entity or site names.
    """

    __slots__ = (
        "_site_of", "_entities_at", "_entities_cache", "_sites_cache",
        "_sorted_entities",
    )

    def __init__(self, placement: Mapping[Entity, Site]):
        site_of: dict[Entity, Site] = {}
        entities_at: dict[Site, set[Entity]] = {}
        for entity, site in placement.items():
            if not entity:
                raise ValueError("entity names must be non-empty")
            if not site:
                raise ValueError(f"entity {entity!r} has an empty site name")
            site_of[entity] = site
            entities_at.setdefault(site, set()).add(entity)
        self._site_of = site_of
        self._entities_at = {
            site: frozenset(entities) for site, entities in entities_at.items()
        }
        # Lazily cached views: the schema is immutable, and per-call
        # frozenset/sort rebuilds dominated workload generation in
        # open-system runs (one transaction generated per arrival).
        self._entities_cache: frozenset[Entity] | None = None
        self._sites_cache: frozenset[Site] | None = None
        self._sorted_entities: tuple[Entity, ...] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def single_site(
        cls, entities: Iterable[Entity], site: Site = "site0"
    ) -> "DatabaseSchema":
        """A centralized database: every entity at one site."""
        return cls({entity: site for entity in entities})

    @classmethod
    def site_per_entity(cls, entities: Iterable[Entity]) -> "DatabaseSchema":
        """The fully distributed extreme: each entity at its own site."""
        return cls({entity: f"site[{entity}]" for entity in entities})

    @classmethod
    def from_groups(
        cls, groups: Mapping[Site, Iterable[Entity]]
    ) -> "DatabaseSchema":
        """Build from a site -> entities mapping.

        Raises:
            ValueError: if an entity is assigned to two sites (the paper
                requires the sites to be pairwise disjoint).
        """
        placement: dict[Entity, Site] = {}
        for site, entities in groups.items():
            for entity in entities:
                if entity in placement and placement[entity] != site:
                    raise ValueError(
                        f"entity {entity!r} assigned to two sites: "
                        f"{placement[entity]!r} and {site!r}"
                    )
                placement[entity] = site
        return cls(placement)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def entities(self) -> frozenset[Entity]:
        cached = self._entities_cache
        if cached is None:
            cached = self._entities_cache = frozenset(self._site_of)
        return cached

    @property
    def sites(self) -> frozenset[Site]:
        cached = self._sites_cache
        if cached is None:
            cached = self._sites_cache = frozenset(self._entities_at)
        return cached

    def entities_sorted(self) -> tuple[Entity, ...]:
        """The entities in sorted order (cached)."""
        cached = self._sorted_entities
        if cached is None:
            cached = self._sorted_entities = tuple(sorted(self._site_of))
        return cached

    def site_of(self, entity: Entity) -> Site:
        """The site storing ``entity``.

        Raises:
            KeyError: if the entity is not in the schema.
        """
        return self._site_of[entity]

    def entities_at(self, site: Site) -> frozenset[Entity]:
        """All entities stored at ``site`` (empty if the site is unknown)."""
        return self._entities_at.get(site, frozenset())

    def __contains__(self, entity: Entity) -> bool:
        return entity in self._site_of

    def colocated(self, a: Entity, b: Entity) -> bool:
        """True if the two entities live at the same site."""
        return self._site_of[a] == self._site_of[b]

    def is_centralized(self) -> bool:
        """True if the schema has at most one site."""
        return len(self._entities_at) <= 1

    def merged_with(self, other: "DatabaseSchema") -> "DatabaseSchema":
        """Union of two schemas.

        Raises:
            ValueError: if an entity is placed differently in the two.
        """
        placement = dict(self._site_of)
        for entity, site in other._site_of.items():
            if entity in placement and placement[entity] != site:
                raise ValueError(
                    f"conflicting placement for {entity!r}: "
                    f"{placement[entity]!r} vs {site!r}"
                )
            placement[entity] = site
        return DatabaseSchema(placement)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._site_of == other._site_of

    def __hash__(self) -> int:
        return hash(frozenset(self._site_of.items()))

    def __repr__(self) -> str:
        groups = {
            site: sorted(entities)
            for site, entities in sorted(self._entities_at.items())
        }
        return f"DatabaseSchema({groups})"
