"""Prefixes of transactions and of transaction systems.

Section 3: a *prefix* of a dag G is a subgraph with no arcs entering it
from outside — a down-set of the partial order. A prefix A' of a system A
picks one prefix per transaction. Prefixes are the state space of every
static analysis in the paper: deadlock prefixes (Theorem 1), the minimal
prefix of the two-transaction algorithm, and the maximal prefixes T* of
Theorem 4 are all instances.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.entity import Entity
from repro.core.system import GlobalNode, TransactionSystem
from repro.core.transaction import Transaction
from repro.util.bitset import bits_of, from_indices

__all__ = ["SystemPrefix", "prefix_mask_from_labels"]


def prefix_mask_from_labels(
    transaction: Transaction, labels: Iterable[str]
) -> int:
    """Build a node mask from operation labels like ``["Lx", "Ux"]``.

    Raises:
        KeyError: if a label does not occur (exactly once) in the
            transaction.
    """
    by_label: dict[str, int] = {}
    for node, op in enumerate(transaction.ops):
        text = str(op)
        if text in by_label:
            raise KeyError(
                f"{transaction.name}: ambiguous label {text!r}; "
                "address the node by id instead"
            )
        by_label[text] = node
    return from_indices(by_label[label] for label in labels)


class SystemPrefix:
    """A prefix A' = (T1', ..., Tn') of a transaction system.

    Args:
        system: the underlying system.
        masks: one bitmask of executed nodes per transaction; each must be
            a down-set of its transaction's partial order.

    Raises:
        ValueError: if some mask is not a down-set.
    """

    __slots__ = ("system", "masks")

    def __init__(self, system: TransactionSystem, masks: Sequence[int]):
        if len(masks) != len(system):
            raise ValueError(
                f"expected {len(system)} masks, got {len(masks)}"
            )
        for i, mask in enumerate(masks):
            t = system[i]
            if mask >> t.node_count:
                raise ValueError(f"mask for {t.name} has out-of-range bits")
            if not t.dag.is_down_set(mask):
                raise ValueError(
                    f"mask {mask:#x} is not a prefix of {t.name}"
                )
        self.system = system
        self.masks = tuple(masks)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def trusted(
        cls, system: TransactionSystem, masks: Sequence[int]
    ) -> "SystemPrefix":
        """Construct without the per-transaction down-set validation.

        For masks that are down-sets by construction — e.g. the
        executed set of a validated :class:`~repro.core.schedule.
        Schedule`, which admitted every step only after its
        predecessors. Skipping the proof keeps prefix extraction O(1)
        on long open-system traces; it also avoids touching the
        transitive closure, which trusted transactions materialize
        lazily. Masks that are not down-sets produce an invalid prefix.
        """
        prefix = object.__new__(cls)
        prefix.system = system
        prefix.masks = tuple(masks)
        return prefix

    @classmethod
    def empty(cls, system: TransactionSystem) -> "SystemPrefix":
        return cls(system, [0] * len(system))

    @classmethod
    def complete(cls, system: TransactionSystem) -> "SystemPrefix":
        return cls(
            system, [t.dag.all_nodes_mask() for t in system.transactions]
        )

    @classmethod
    def from_labels(
        cls, system: TransactionSystem, labels: Sequence[Iterable[str]]
    ) -> "SystemPrefix":
        """Build from per-transaction operation labels.

        The given nodes are *down-closed* automatically, so callers can
        name just the maximal nodes of each prefix.
        """
        masks = []
        for t, names in zip(system.transactions, labels):
            mask = prefix_mask_from_labels(t, names)
            masks.append(t.dag.down_closure(mask))
        return cls(system, masks)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def executed(self, gnode: GlobalNode) -> bool:
        return bool(self.masks[gnode.txn] >> gnode.node & 1)

    def remaining_mask(self, txn: int) -> int:
        t = self.system[txn]
        return t.dag.all_nodes_mask() & ~self.masks[txn]

    def is_complete(self) -> bool:
        return all(
            self.masks[i] == t.dag.all_nodes_mask()
            for i, t in enumerate(self.system.transactions)
        )

    def is_transaction_done(self, txn: int) -> bool:
        return self.masks[txn] == self.system[txn].dag.all_nodes_mask()

    def step_count(self) -> int:
        """Total number of executed nodes."""
        return sum(mask.bit_count() for mask in self.masks)

    def locked_not_unlocked(self, txn: int) -> frozenset[Entity]:
        """Entities ``x`` with ``Lx`` executed but ``Ux`` not, in Ti'."""
        t = self.system[txn]
        mask = self.masks[txn]
        held = set()
        for entity in t.entities:
            if (
                mask >> t.lock_node(entity) & 1
                and not mask >> t.unlock_node(entity) & 1
            ):
                held.add(entity)
        return frozenset(held)

    def holders(self) -> dict[Entity, int]:
        """Map each held entity to the transaction holding it.

        Raises:
            ValueError: if two prefixes hold the same entity (such a prefix
                cannot have a schedule — the necessary condition of §3).
        """
        held: dict[Entity, int] = {}
        for i in range(len(self.system)):
            for entity in self.locked_not_unlocked(i):
                if entity in held:
                    raise ValueError(
                        f"entity {entity!r} locked-but-not-unlocked by both "
                        f"T{held[entity] + 1} and T{i + 1}"
                    )
                held[entity] = i
        return held

    def is_lock_consistent(self) -> bool:
        """True if no entity is held by two prefixes (necessary for a
        schedule to exist; not sufficient)."""
        try:
            self.holders()
        except ValueError:
            return False
        return True

    def executed_nodes(self, txn: int) -> list[int]:
        return list(bits_of(self.masks[txn]))

    def describe(self) -> str:
        """Readable summary, one line per transaction."""
        lines = []
        for i, t in enumerate(self.system.transactions):
            labels = [t.describe_node(u) for u in self.executed_nodes(i)]
            lines.append(f"{t.name}: {{{', '.join(labels)}}}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SystemPrefix):
            return NotImplemented
        return self.system is other.system and self.masks == other.masks

    def __hash__(self) -> int:
        return hash((id(self.system), self.masks))

    def __repr__(self) -> str:
        return f"SystemPrefix(masks={[hex(m) for m in self.masks]})"
