"""Lock / Unlock / Action operations — the node labels of a transaction.

Section 2: every node of a transaction is labelled ``Lx`` (lock entity x),
``Ux`` (unlock x), or ``A.x`` (an indivisible read-update action on x).
The analyses only depend on the Lock/Unlock skeleton, but the model keeps
actions so that schedules and the simulator are faithful to the paper's
serializability semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.entity import Entity

__all__ = ["OpKind", "Operation"]


class OpKind(enum.Enum):
    """The three operation labels of the model."""

    LOCK = "L"
    UNLOCK = "U"
    ACTION = "A"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Operation:
    """One step of a transaction: a kind applied to an entity.

    ``Operation`` is a pure label; its position in the transaction's
    partial order lives in :class:`repro.core.transaction.Transaction`.
    """

    kind: OpKind
    entity: Entity

    def __str__(self) -> str:
        if self.kind is OpKind.ACTION:
            return f"A.{self.entity}"
        return f"{self.kind.value}{self.entity}"

    @classmethod
    def lock(cls, entity: Entity) -> "Operation":
        return cls(OpKind.LOCK, entity)

    @classmethod
    def unlock(cls, entity: Entity) -> "Operation":
        return cls(OpKind.UNLOCK, entity)

    @classmethod
    def action(cls, entity: Entity) -> "Operation":
        return cls(OpKind.ACTION, entity)

    @classmethod
    def parse(cls, text: str) -> "Operation":
        """Parse ``"Lx"``, ``"Ux"`` or ``"A.x"`` forms.

        Raises:
            ValueError: on malformed input.
        """
        text = text.strip()
        if text.startswith("A."):
            entity = text[2:]
            kind = OpKind.ACTION
        elif text[:1] in ("L", "U") and len(text) > 1:
            kind = OpKind.LOCK if text[0] == "L" else OpKind.UNLOCK
            entity = text[1:]
        else:
            raise ValueError(f"cannot parse operation {text!r}")
        if not entity:
            raise ValueError(f"operation {text!r} names no entity")
        return cls(kind, entity)

    @property
    def is_lock(self) -> bool:
        return self.kind is OpKind.LOCK

    @property
    def is_unlock(self) -> bool:
        return self.kind is OpKind.UNLOCK

    @property
    def is_action(self) -> bool:
        return self.kind is OpKind.ACTION
