"""Distributed locked transactions as validated partial orders.

Section 2 of the paper defines a locked transaction ``T = (V, A)`` as a
partial order of operations subject to:

* for each accessed entity ``x`` there is exactly one ``Lx`` node, exactly
  one ``Ux`` node, with ``Lx`` preceding ``Ux``, and any ``A.x`` action
  nodes falling between them;
* nodes whose entities reside at the same site are **totally ordered**
  (with one site this degenerates to the classical centralized model of
  transactions as sequences).

:class:`Transaction` enforces all of this at construction time, and the
rest of the library can therefore take well-formedness for granted.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.core.entity import DatabaseSchema, Entity
from repro.core.operations import Operation, OpKind
from repro.util.bitset import bits_of
from repro.util.dag import Dag

__all__ = ["Transaction", "TransactionBuilder", "MalformedTransactionError"]


class MalformedTransactionError(ValueError):
    """The node set or arcs violate the paper's well-formedness rules."""


class Transaction:
    """An immutable locked transaction.

    Args:
        name: identifier used in rendering and system-level addressing.
        ops: operation labels; index in this sequence is the node id.
        arcs: precedence arcs between node ids.
        schema: entity placement; defaults to one site per entity (the
            weakest placement — every distributed placement refines it).
        read_set: entities the transaction only *reads* (shared locks in
            the simulator's replication layer); everything else is a
            write. Empty by default — the paper's model treats every
            lock as exclusive, and all analyses ignore the distinction.

    Raises:
        MalformedTransactionError: if locking discipline or the per-site
            total-order requirement is violated, or if the read set
            names an entity the transaction does not access.
    """

    __slots__ = ("name", "ops", "dag", "schema", "read_set", "_lock_node",
                 "_unlock_node", "_entities", "_site_nodes")

    def __init__(
        self,
        name: str,
        ops: Sequence[Operation],
        arcs: Iterable[tuple[int, int]],
        schema: DatabaseSchema | None = None,
        read_set: Iterable[Entity] = (),
    ):
        self.name = name
        self.ops = tuple(ops)
        if schema is None:
            schema = DatabaseSchema.site_per_entity(
                {op.entity for op in self.ops}
            )
        self.schema = schema
        try:
            self.dag = Dag(len(self.ops), arcs)
        except ValueError as exc:
            raise MalformedTransactionError(
                f"{name}: precedence arcs invalid: {exc}"
            ) from exc
        self._lock_node: dict[Entity, int] = {}
        self._unlock_node: dict[Entity, int] = {}
        self._entities: frozenset[Entity] = frozenset(
            op.entity for op in self.ops
        )
        self.read_set: frozenset[Entity] = frozenset(read_set)
        if not self.read_set <= self._entities:
            extra = sorted(self.read_set - self._entities)
            raise MalformedTransactionError(
                f"{name}: read set names unaccessed entities {extra}"
            )
        self._validate_lock_discipline()
        self._site_nodes = self._group_by_site()
        self._validate_site_total_order()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _validate_lock_discipline(self) -> None:
        for node, op in enumerate(self.ops):
            if op.entity not in self.schema:
                raise MalformedTransactionError(
                    f"{self.name}: entity {op.entity!r} missing from schema"
                )
            if op.kind is OpKind.LOCK:
                if op.entity in self._lock_node:
                    raise MalformedTransactionError(
                        f"{self.name}: two Lock nodes for {op.entity!r}"
                    )
                self._lock_node[op.entity] = node
            elif op.kind is OpKind.UNLOCK:
                if op.entity in self._unlock_node:
                    raise MalformedTransactionError(
                        f"{self.name}: two Unlock nodes for {op.entity!r}"
                    )
                self._unlock_node[op.entity] = node
        for entity in self._entities:
            if entity not in self._lock_node:
                raise MalformedTransactionError(
                    f"{self.name}: entity {entity!r} has no Lock node"
                )
            if entity not in self._unlock_node:
                raise MalformedTransactionError(
                    f"{self.name}: entity {entity!r} has no Unlock node"
                )
            lock = self._lock_node[entity]
            unlock = self._unlock_node[entity]
            if not self.dag.precedes(lock, unlock):
                raise MalformedTransactionError(
                    f"{self.name}: L{entity} does not precede U{entity}"
                )
        for node, op in enumerate(self.ops):
            if op.kind is OpKind.ACTION:
                lock = self._lock_node[op.entity]
                unlock = self._unlock_node[op.entity]
                if not self.dag.precedes(lock, node):
                    raise MalformedTransactionError(
                        f"{self.name}: action on {op.entity!r} not preceded "
                        f"by its Lock"
                    )
                if not self.dag.precedes(node, unlock):
                    raise MalformedTransactionError(
                        f"{self.name}: action on {op.entity!r} not followed "
                        f"by its Unlock"
                    )

    def _group_by_site(self) -> dict[str, list[int]]:
        groups: dict[str, list[int]] = {}
        for node, op in enumerate(self.ops):
            groups.setdefault(self.schema.site_of(op.entity), []).append(node)
        return groups

    def _validate_site_total_order(self) -> None:
        # A subset is totally ordered iff, listed in topological order,
        # each consecutive pair is ordered (transitivity gives the
        # rest) — an O(k) check per site instead of the historical
        # all-pairs scan, using the order the Dag already computed.
        position = [0] * self.dag.n
        for rank, node in enumerate(self.dag.cached_topological_order()):
            position[node] = rank
        for site, nodes in self._site_nodes.items():
            ordered = sorted(nodes, key=position.__getitem__)
            for u, v in zip(ordered, ordered[1:]):
                if not self.dag.precedes(u, v):
                    raise MalformedTransactionError(
                        f"{self.name}: nodes {self.describe_node(u)} and "
                        f"{self.describe_node(v)} share site {site!r} "
                        f"but are unordered"
                    )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.ops)

    @property
    def entities(self) -> frozenset[Entity]:
        """R(T): the set of entities accessed by the transaction."""
        return self._entities

    def op(self, node: int) -> Operation:
        return self.ops[node]

    def lock_node(self, entity: Entity) -> int:
        """Node id of ``L entity``.

        Raises:
            KeyError: if the transaction does not access the entity.
        """
        return self._lock_node[entity]

    def unlock_node(self, entity: Entity) -> int:
        """Node id of ``U entity``."""
        return self._unlock_node[entity]

    def action_nodes(self, entity: Entity) -> list[int]:
        """Node ids of the ``A.entity`` actions, in id order."""
        return [
            node
            for node, op in enumerate(self.ops)
            if op.kind is OpKind.ACTION and op.entity == entity
        ]

    def precedes(self, u: int, v: int) -> bool:
        """True if node ``u`` strictly precedes node ``v`` in T."""
        return self.dag.precedes(u, v)

    def describe_node(self, node: int) -> str:
        """Human-readable node label, e.g. ``"Lx"``."""
        return str(self.ops[node])

    def sites_touched(self) -> frozenset[str]:
        return frozenset(self._site_nodes)

    def nodes_at_site(self, site: str) -> list[int]:
        """Node ids at ``site`` in execution (total) order."""
        nodes = list(self._site_nodes.get(site, []))
        nodes.sort(key=lambda u: self.dag.ancestors(u).bit_count())
        return nodes

    # ------------------------------------------------------------------
    # structural predicates
    # ------------------------------------------------------------------

    def is_sequential(self) -> bool:
        """True if the partial order is total (a centralized transaction)."""
        n = self.node_count
        for u in range(n):
            for v in range(u + 1, n):
                if not self.dag.comparable(u, v):
                    return False
        return True

    def is_two_phase(self) -> bool:
        """True if no Unlock precedes a Lock (2PL, [EGLT]).

        For partial orders the natural reading is: there is no path from
        any Unlock node to any Lock node.
        """
        for u, op in enumerate(self.ops):
            if op.kind is OpKind.UNLOCK:
                for v in bits_of(self.dag.descendants(u)):
                    if self.ops[v].kind is OpKind.LOCK:
                        return False
        return True

    # ------------------------------------------------------------------
    # derived transactions
    # ------------------------------------------------------------------

    def lock_skeleton(self) -> "Transaction":
        """The transaction with action nodes removed.

        Section 2: the positions of actions play no role in safety or
        deadlock analysis, so the analyses all run on the skeleton. Node
        ids are renumbered; use :meth:`lock_node` / :meth:`unlock_node` on
        the result.
        """
        keep = [
            node
            for node, op in enumerate(self.ops)
            if op.kind is not OpKind.ACTION
        ]
        if len(keep) == len(self.ops):
            return self
        index = {node: i for i, node in enumerate(keep)}
        ops = [self.ops[node] for node in keep]
        # Project the closure onto kept nodes, then reduce: this preserves
        # the induced partial order even when an arc ran through an action.
        arcs = [
            (index[u], index[v])
            for u in keep
            for v in bits_of(self.dag.descendants(u))
            if v in index
        ]
        return Transaction(self.name, ops, arcs, self.schema, self.read_set)

    def renamed(self, name: str) -> "Transaction":
        """Identical transaction under a different name."""
        return Transaction(
            name, self.ops, self.dag.arcs, self.schema, self.read_set
        )

    def relabeled(self, mapping: Mapping[Entity, Entity]) -> "Transaction":
        """Rename entities via ``mapping`` (identity where missing).

        The schema is re-derived by carrying each entity's site over to
        its new name.
        """
        ops = [
            Operation(op.kind, mapping.get(op.entity, op.entity))
            for op in self.ops
        ]
        placement = {
            mapping.get(entity, entity): self.schema.site_of(entity)
            for entity in self._entities
        }
        read_set = {
            mapping.get(entity, entity) for entity in self.read_set
        }
        return Transaction(
            self.name, ops, self.dag.arcs, DatabaseSchema(placement),
            read_set,
        )

    def linear_extensions(self) -> Iterator["Transaction"]:
        """Yield each total order t ∈ T as a sequential Transaction."""
        for order in self.dag.linear_extensions():
            ops = [self.ops[node] for node in order]
            arcs = [(i, i + 1) for i in range(len(ops) - 1)]
            yield Transaction(self.name, ops, arcs, self.schema,
                              self.read_set)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def trusted(
        cls,
        name: str,
        ops: Sequence[Operation],
        arcs: Iterable[tuple[int, int]],
        schema: DatabaseSchema,
        read_set: Iterable[Entity] = (),
        op_sites: Sequence[str] | None = None,
    ) -> "Transaction":
        """Construct without validation — for generator-produced input.

        The workload generator builds transactions that are valid *by
        construction* (see :mod:`repro.sim.workload`): exactly one
        Lock/Unlock pair per accessed entity with the actions between
        them, per-site total orders, every arc forward in node-id
        order, and a read set drawn from the accessed entities. For
        such input this constructor skips the locking-discipline and
        site-total-order validation and builds the Dag through
        :meth:`Dag.trusted <repro.util.dag.Dag.trusted>` (no cycle
        check, lazy closure), producing an object equal to what the
        validating constructor returns — open-system arrivals are the
        hot caller. ``schema`` is required: deriving a default would
        need the validation pass this path exists to skip.

        Feeding input that violates the invariants produces a silently
        malformed transaction; use the normal constructor whenever the
        input is not proven valid by construction.

        ``op_sites`` optionally supplies the per-node site names (the
        generator already resolved them to lay down the per-site
        chains); when omitted they are looked up from the schema.
        """
        t = object.__new__(cls)
        t.name = name
        t.ops = tuple(ops)
        t.schema = schema
        t.dag = Dag.trusted(len(t.ops), arcs)
        t.read_set = (
            read_set if type(read_set) is frozenset else frozenset(read_set)
        )
        if op_sites is None:
            site_of = schema.site_of
            op_sites = [site_of(op.entity) for op in t.ops]
        lock_node: dict[Entity, int] = {}
        unlock_node: dict[Entity, int] = {}
        groups: dict[str, list[int]] = {}
        lock_kind = OpKind.LOCK
        unlock_kind = OpKind.UNLOCK
        for node, op in enumerate(t.ops):
            kind = op.kind
            entity = op.entity
            if kind is lock_kind:
                lock_node[entity] = node
            elif kind is unlock_kind:
                unlock_node[entity] = node
            site = op_sites[node]
            nodes = groups.get(site)
            if nodes is None:
                groups[site] = [node]
            else:
                nodes.append(node)
        t._lock_node = lock_node
        t._unlock_node = unlock_node
        t._entities = frozenset(lock_node)
        t._site_nodes = groups
        return t

    @classmethod
    def sequential(
        cls,
        name: str,
        ops: Sequence[Operation | str],
        schema: DatabaseSchema | None = None,
        read_set: Iterable[Entity] = (),
    ) -> "Transaction":
        """A totally ordered (centralized-style) transaction.

        Args:
            ops: operations, either :class:`Operation` or parseable strings
                like ``"Lx"``, ``"A.x"``, ``"Ux"``.
        """
        parsed = [
            op if isinstance(op, Operation) else Operation.parse(op)
            for op in ops
        ]
        arcs = [(i, i + 1) for i in range(len(parsed) - 1)]
        return cls(name, parsed, arcs, schema, read_set)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return (
            self.name == other.name
            and self.ops == other.ops
            and self.dag == other.dag
            and self.schema == other.schema
            and self.read_set == other.read_set
        )

    def __hash__(self) -> int:
        return hash((self.name, self.ops, self.dag))

    def __repr__(self) -> str:
        labels = " ".join(str(op) for op in self.ops)
        return f"Transaction({self.name!r}: {labels})"


class TransactionBuilder:
    """Fluent construction of distributed transactions.

    Example::

        b = TransactionBuilder("T1", schema)
        lx, ux = b.lock("x"), b.unlock("x")
        ly, uy = b.lock("y"), b.unlock("y")
        b.chain(lx, ux, ly, uy)          # site-1 sequence
        lz, uz = b.lock("z"), b.unlock("z")
        b.chain(lz, uz)                  # site-2 sequence
        b.arc(ly, lz)                    # cross-site dependency
        t1 = b.build()

    ``lock``/``unlock``/``action`` return node ids to wire with
    :meth:`arc` / :meth:`chain`. Lock-before-unlock arcs are **not**
    implicit; add them (or call :meth:`auto_close`).
    """

    def __init__(self, name: str, schema: DatabaseSchema | None = None):
        self.name = name
        self.schema = schema
        self._ops: list[Operation] = []
        self._arcs: list[tuple[int, int]] = []

    def _add(self, op: Operation) -> int:
        self._ops.append(op)
        return len(self._ops) - 1

    def lock(self, entity: Entity) -> int:
        """Append an ``L entity`` node; returns its node id."""
        return self._add(Operation.lock(entity))

    def unlock(self, entity: Entity) -> int:
        """Append a ``U entity`` node; returns its node id."""
        return self._add(Operation.unlock(entity))

    def action(self, entity: Entity) -> int:
        """Append an ``A.entity`` node; returns its node id."""
        return self._add(Operation.action(entity))

    def arc(self, u: int, v: int) -> "TransactionBuilder":
        """Record that node ``u`` precedes node ``v``."""
        self._arcs.append((u, v))
        return self

    def chain(self, *nodes: int) -> "TransactionBuilder":
        """Record a total order over the given nodes."""
        for u, v in zip(nodes, nodes[1:]):
            self._arcs.append((u, v))
        return self

    def sequence(self, ops: Sequence[Operation | str]) -> list[int]:
        """Append a chain of operations; returns their node ids."""
        nodes = []
        for op in ops:
            parsed = op if isinstance(op, Operation) else Operation.parse(op)
            nodes.append(self._add(parsed))
        self.chain(*nodes)
        return nodes

    def auto_close(self) -> "TransactionBuilder":
        """Add the ``Lx -> Ux`` arc for every accessed entity."""
        lock_of: dict[Entity, int] = {}
        unlock_of: dict[Entity, int] = {}
        for node, op in enumerate(self._ops):
            if op.kind is OpKind.LOCK:
                lock_of[op.entity] = node
            elif op.kind is OpKind.UNLOCK:
                unlock_of[op.entity] = node
        for entity, lock in lock_of.items():
            if entity in unlock_of:
                self._arcs.append((lock, unlock_of[entity]))
        return self

    def build(self, read_set: Iterable[Entity] = ()) -> Transaction:
        """Validate and return the immutable Transaction."""
        return Transaction(
            self.name, self._ops, self._arcs, self.schema, read_set
        )
