"""Serialization digraphs D(S), D(S') and serializability tests.

Section 2: for a complete schedule S, D(S) has a node per transaction and
an arc ``Ti -> Tj`` labelled x whenever both access x and Ti acts on
(equivalently: locks) x first. S is serializable iff D(S) is acyclic.

Section 5 (Lemma 1) extends this to partial schedules: D(S') has an arc
``Ti -> Tj`` labelled x if both access x and Ti locks x in S' before Tj
does — **including** the case where Tj has not locked x in S' at all. A
system is safe and deadlock-free iff D(S') is acyclic for every partial
schedule S'.
"""

from __future__ import annotations

from repro.core.schedule import Schedule
from repro.util.graphs import Digraph, find_cycle_ints

__all__ = [
    "d_graph",
    "equivalent_serial_order",
    "is_serializable",
]


def d_graph(schedule: Schedule, full: bool = True) -> Digraph:
    """Build the digraph D(S') of a (partial) schedule.

    Args:
        schedule: a validated (partial) schedule.
        full: when True, emit every pairwise arc exactly as the paper
            defines D; when False, emit the reachability-equivalent sparse
            form (consecutive lockers, plus arcs from the last locker to
            the accessors that have not locked yet). Both forms have a
            cycle under exactly the same circumstances.
    """
    system = schedule.system
    graph = Digraph()
    for i in range(len(system)):
        graph.add_node(i)
    prefix = schedule.prefix()
    lock_orders = schedule.lock_sequences()
    for entity in system.entities:
        accessors = system.accessors(entity)
        if len(accessors) < 2:
            continue
        lockers = lock_orders.get(entity, [])
        not_locked = [
            j
            for j in accessors
            if not prefix.masks[j] >> system[j].lock_node(entity) & 1
        ]
        if full:
            for a in range(len(lockers)):
                for b in range(a + 1, len(lockers)):
                    graph.add_arc(lockers[a], lockers[b], label=entity)
                for j in not_locked:
                    graph.add_arc(lockers[a], j, label=entity)
        else:
            for a, b in zip(lockers, lockers[1:]):
                graph.add_arc(a, b, label=entity)
            if lockers:
                for j in not_locked:
                    graph.add_arc(lockers[-1], j, label=entity)
    return graph


def is_serializable(schedule: Schedule) -> bool:
    """True iff D(S) is acyclic (the §2 criterion).

    Meaningful for complete schedules; for partial schedules this is the
    Lemma 1 acyclicity condition on D(S').

    Builds the sparse form of D as a plain adjacency map instead of a
    labelled :class:`Digraph` — the arc set is the one ``d_graph(...,
    full=False)`` produces, so the verdict is identical, but the long
    traces of open-system runs skip the per-arc label bookkeeping that
    dominated the end-of-run check.
    """
    system = schedule.system
    masks = schedule.prefix().masks
    transactions = system.transactions
    edges: dict[int, list[int]] = {}
    for entity, lockers in schedule.lock_sequences_view().items():
        accessors = system.accessors(entity)
        if len(accessors) < 2:
            continue
        prev = lockers[0]
        for locker in lockers[1:]:
            bucket = edges.get(prev)
            if bucket is None:
                edges[prev] = [locker]
            else:
                bucket.append(locker)
            prev = locker
        for j in accessors:
            if not masks[j] >> transactions[j]._lock_node[entity] & 1:
                bucket = edges.get(prev)
                if bucket is None:
                    edges[prev] = [j]
                else:
                    bucket.append(j)
    empty = ()
    n = len(system)
    return find_cycle_ints(
        range(n), lambda u: edges.get(u, empty), n
    ) is None


def equivalent_serial_order(schedule: Schedule) -> list[int] | None:
    """A serial transaction order equivalent to the schedule, or None.

    Returns a topological order of D(S) when acyclic, else None.
    """
    graph = d_graph(schedule, full=False)
    if not graph.is_acyclic():
        return None
    from repro.util.graphs import topological_sort

    return topological_sort(sorted(graph.nodes), graph.successors)
