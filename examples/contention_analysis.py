"""Contention analytics: where does the latency actually go?

A throughput number says a workload is slow; it does not say *why*.
This demo points the latency-attribution engine
(:mod:`repro.sim.observe.attribution`) at a deliberately skewed
workload — one entity drawing most of the traffic — and reads the
answer off the run:

* the **segment decomposition** splits every committed transaction's
  measured latency into admission queueing, lock-wait, blocked-on-
  coordinator, replica fan-out, execution service, and commit-round
  time.  The split is *conserved*: the segments sum back to the run's
  own exec/commit latencies bit-exactly, so no millisecond is invented
  or lost;
* the **contention profile** ranks (entity, site) lock cells by
  blocked time and flags lock convoys — here it must finger the
  configured hotspot, because we built the skew in;
* the **blame graph** weights waits-for edges by blocked time and
  exports to Graphviz DOT — the heaviest arcs are the dependencies
  worth breaking;
* the **abort-cost account** prices the contention policy: every
  wound restarts a transaction and throws its partial work away, and
  the wasted fraction says how much of the run burned in retries.

The same analysis runs offline: export the JSONL trace and
``repro analyze trace.jsonl`` reproduces this summary bit-for-bit
(``--check`` turns the conservation identity into a CI gate).

Run:  python examples/contention_analysis.py
"""

import tempfile
from pathlib import Path

from repro.core.system import TransactionSystem
from repro.io.dot import blame_graph_to_dot
from repro.sim import ObserveConfig, SimulationConfig, Simulator
from repro.sim.observe.attribution import analyze_trace
from repro.sim.workload import WorkloadSpec

# Zipf-skewed entity choice: e0 is the designed hotspot.
WORKLOAD = WorkloadSpec(
    n_entities=8,
    n_sites=3,
    entities_per_txn=(2, 4),
    hotspot_skew=2.0,
)


def main() -> None:
    observe = ObserveConfig(
        trace=True, trace_capacity=1 << 20, attribution=True
    )
    config = SimulationConfig(
        arrival_rate=0.6,
        max_transactions=120,
        warmup_time=5.0,
        network_delay=0.4,
        commit_protocol="two-phase",
        workload=WORKLOAD,
        seed=11,
        observe=observe,
    )
    sim = Simulator(TransactionSystem([]), "wound-wait", config)
    result = sim.run()
    summary = result.attribution

    print("— Part 1: the conserved latency decomposition —")
    segments = summary["segments"]
    total = sum(segments.values())
    for name, value in segments.items():
        print(f"  {name:<12} {value:10.1f}  {value / total:6.1%}")
    conservation = summary["conservation"]
    print(
        f"  conserved exactly over {conservation['transactions']} "
        f"commits: {conservation['exact']}"
    )

    print()
    print("— Part 2: the hotspot, found —")
    hotspot = summary["hotspot"]
    print(
        f"  designed hotspot: e0; detected: {hotspot['entity']} "
        f"({hotspot['share']:.0%} of all blocked time)"
    )
    for cell in summary["hot_cells"][:3]:
        print(
            f"  {cell['entity']}@{cell['site']}: blocked "
            f"{cell['blocked_time']:.1f}, peak queue "
            f"{cell['peak_queue']}, convoy {cell['convoy_time']:.1f}"
        )

    print()
    print("— Part 3: the blame graph —")
    edges = sim.observe.attribution.blame_edge_list()
    for edge in edges[:3]:
        print(
            f"  T{edge['waiter']} blocked {edge['time']:.1f} behind "
            f"T{edge['holder']} on {edge['entity']}@{edge['site']}"
        )
    dot = blame_graph_to_dot(edges)
    print(f"  DOT export: {len(edges)} weighted edges, "
          f"{len(dot.splitlines())} lines of Graphviz")

    print()
    print("— Part 4: what the aborts cost —")
    aborts = summary["aborts"]
    for cause, entry in aborts["by_cause"].items():
        print(
            f"  {cause}: {entry['count']} aborts, "
            f"{entry['wasted_time']:.1f} sim-time thrown away"
        )
    print(f"  wasted fraction: {aborts['wasted_fraction']:.1%} of all "
          f"transaction time")

    print()
    print("— Part 5: the offline path agrees bit-for-bit —")
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.jsonl"
        sim.observe.tracer.export_jsonl(str(trace_path))
        offline_summary, _engine = analyze_trace(str(trace_path))
        print(
            "  repro analyze reproduces the online summary: "
            f"{offline_summary == summary}"
        )


if __name__ == "__main__":
    main()
