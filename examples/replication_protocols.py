"""Replica control: ROWA vs write-all-available vs majority quorums.

The paper's model keeps each entity at exactly one site, so a site
crash simply makes its entities unreachable. Real distributed
databases replicate — and then the *replica-control protocol* decides
what a crash costs:

* ``rowa`` (read-one-write-all) — reads lock one copy, writes lock
  every copy. Cheap, always-current reads; but one crashed replica
  blocks all writers of its entities until it repairs.
* ``rowa-available`` (write-all-available) — writes lock every *up*
  copy and route around crashes; a recovering site missed writes and
  must catch up (an anti-entropy scan every ``catchup_time``) before
  serving reads again.
* ``quorum`` — reads and writes both lock a majority. Any two
  majorities intersect, so reads always see a current copy and any
  minority of crashed sites is masked without reconfiguration.

This demo runs the same open-system read-heavy workload over 3 copies
per entity under a seeded site-crash schedule and reports, per
protocol: committed counts, the availability metric (fraction of time
an entity's read *and* write rule were satisfiable), and the
exec/commit latency split under two-phase commit (more write replicas
= more commit participants).

Run:  python examples/replication_protocols.py
"""

from repro.core.system import TransactionSystem
from repro.sim.runtime import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec
from repro.util.render import format_table

PROTOCOLS = ["rowa", "rowa-available", "quorum"]

WORKLOAD = WorkloadSpec(
    n_entities=18,
    n_sites=6,
    entities_per_txn=(2, 3),
    read_fraction=0.7,
    replication_factor=3,
)


def run_protocol(protocol: str, failure_rate: float):
    config = SimulationConfig(
        seed=1,
        workload=WORKLOAD,
        workload_seed=5,
        replica_protocol=protocol,
        commit_protocol="two-phase",
        network_delay=0.5,
        arrival_rate=0.5,
        max_transactions=120,
        warmup_time=30.0,
        failure_rate=failure_rate,
        repair_time=10.0,
        catchup_time=30.0,
    )
    # Open system: the arrival process generates all the traffic.
    return simulate(TransactionSystem([]), "wound-wait", config)


def report(failure_rate: float) -> None:
    rows = []
    for protocol in PROTOCOLS:
        r = run_protocol(protocol, failure_rate)
        exec_p = r.latency_percentiles("exec")["p95"]
        commit_p = r.latency_percentiles("commit")["p95"]
        rows.append(
            [
                protocol,
                f"{r.committed}/{r.total}",
                r.crashes,
                r.aborts,
                r.unavailable_aborts,
                f"{r.availability:.3f}",
                f"{r.read_availability:.3f}",
                f"{r.write_availability:.3f}",
                f"{exec_p:.1f}",
                f"{commit_p:.1f}",
            ]
        )
    print(
        format_table(
            [
                "protocol", "committed", "crashes", "aborts", "unavail",
                "avail", "r-avail", "w-avail", "exec-p95", "commit-p95",
            ],
            rows,
        )
    )
    print()


def main() -> None:
    print(
        "== replication factor 3, reliable sites "
        "(availability is free) =="
    )
    report(failure_rate=0.0)

    print(
        "== same workload under a site-crash schedule "
        "(failure rate 0.04, repair 10, catch-up 30) =="
    )
    report(failure_rate=0.04)

    print(
        "takeaways: with reliable sites every protocol serves "
        "everything\n(quorum just pays majority-sized read locking and "
        "commit rounds).\nUnder crashes, write-all (rowa) loses write "
        "availability with every\ndown replica; write-all-available "
        "keeps writes flowing but its\nrecovering sites serve no reads "
        "until caught up; majority quorums\nmask the failures in both "
        "directions and keep the highest\nfull-service availability."
    )


if __name__ == "__main__":
    main()
