"""The open-system engine and the sweep runner, end to end.

Every other demo replays a *closed batch*: a fixed set of transactions
starts, drains, done. Production databases never get that luxury —
traffic keeps arriving, and the interesting questions are steady-state
ones: how much load can a contention policy sustain, and what latency
does a client see at that load?

Part 1 opens the system: Poisson arrivals (``arrival_rate``) draw
fresh transactions from a :class:`~repro.sim.workload.WorkloadSpec`,
a warm-up window excludes the initial transient, and the report shows
steady-state throughput, mean in-flight concurrency, and p50/p95/p99
latency.

Part 2 sweeps the offered load: a declarative
:class:`~repro.experiments.SweepSpec` grid (policy x arrival rate x
seeds) runs on a multiprocessing pool — bit-identical to serial
execution — and traces each policy's throughput curve up to and past
saturation.

Run:  python examples/open_system_sweep.py
"""

from repro.core.system import TransactionSystem
from repro.experiments import SweepSpec, run_sweep, sweep_records
from repro.sim.metrics import SimulationResult
from repro.sim.runtime import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec

WORKLOAD = WorkloadSpec(
    n_entities=24,
    n_sites=4,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=0.6,
)


def open_run() -> None:
    print("— one open-system run: 400 arrivals, warm-up excluded —")
    results = []
    for policy in ("wound-wait", "wait-die", "detect"):
        config = SimulationConfig(
            arrival_rate=0.5,
            max_transactions=400,
            warmup_time=80.0,
            workload=WORKLOAD,
            workload_seed=7,
            seed=1,
        )
        results.append(simulate(TransactionSystem([]), policy, config))
    print(SimulationResult.open_summary_table(results))


def load_sweep() -> None:
    print()
    print("— sweeping offered load (parallel sweep runner) —")
    spec = SweepSpec(
        policies=("wound-wait", "wait-die"),
        protocols=("instant",),
        arrival_rates=(0.2, 0.4, 0.8, 1.6),
        failure_rates=(0.0,),
        seeds=(0, 1),
        workload=WORKLOAD,
        base=SimulationConfig(
            max_transactions=200, warmup_time=60.0, workload_seed=7
        ),
    )
    records = sweep_records(spec, run_sweep(spec))
    print(f"{'policy':11s} {'offered':>8s} {'thruput':>8s} "
          f"{'p95':>7s} {'aborts':>7s}")
    for policy in spec.policies:
        for rate in spec.arrival_rates:
            rows = [
                r for r in records
                if r["policy"] == policy and r["arrival_rate"] == rate
            ]
            thruput = sum(r["steady_throughput"] for r in rows) / len(rows)
            p95 = sum(r["p95"] for r in rows) / len(rows)
            aborts = sum(r["aborts"] for r in rows)
            print(f"{policy:11s} {rate:8.1f} {thruput:8.3f} "
                  f"{p95:7.1f} {aborts:7d}")
    print()
    print("throughput tracks the offered load until the lock tables")
    print("saturate; past that, extra load only buys aborts and latency.")


def main() -> None:
    open_run()
    load_sweep()


if __name__ == "__main__":
    main()
