"""Durable recovery: write-ahead logging under crashes and bad disks.

The durability model (``repro.sim.durability``) replaces the
simulator's idealized free WAL with a real one: every protocol force
point — the participant's prepare record before its VOTE-YES, the
coordinator's decision record before release fan-out, the Paxos
acceptor's accept record before it registers a vote — costs a
``flush_time``, and a crash truncates the site's volatile state to
whatever its log actually holds. Recovery is replay, not magic: the
site re-acquires exactly the log-implied retained locks, reconstructs
its in-doubt set from prepare-without-decision records, and asks the
coordinator (``cm_inquire``) until every in-doubt transaction is
resolved — with presumed-abort answering unknown transactions "abort"
straight from record absence, for free.

This demo runs the same crashing workload (site failures plus a disk
that loses the newest log record on 30% of crashes) under the three
forcing protocols and reports the durability ledger: forces paid,
replays run, in-doubt participants resolved, and tail records lost.
It then verifies the recovery invariant the conformance suite pins —
every replay re-acquired *exactly* the locks its log implied — and
the presumed-abort optimisation: plain 2PC must force a decision
record even for rounds that abort, while presumed-abort logs nothing
about them — record absence *is* the abort decision.

Run:  python examples/durable_recovery.py
"""

import random

from repro.sim.durability import DurabilityConfig
from repro.sim.runtime import SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec, random_system
from repro.util.render import format_table

WORKLOAD = WorkloadSpec(
    n_transactions=30,
    n_entities=10,
    n_sites=4,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=0.6,
    read_fraction=0.3,
    replication_factor=2,
)

PROTOCOLS = ["two-phase", "presumed-abort", "paxos-commit"]


def run_protocol(protocol: str):
    system = random_system(random.Random(11), WORKLOAD)
    config = SimulationConfig(
        seed=6,
        workload=WORKLOAD,
        commit_protocol=protocol,
        replica_protocol="rowa-available",
        network_delay=0.5,
        commit_timeout=6.0,
        failure_rate=0.02,
        repair_time=5.0,
        durability=DurabilityConfig(flush_time=0.5, tail_loss_rate=0.3),
    )
    sim = Simulator(system, "wound-wait", config)
    return sim, sim.run()


def main() -> None:
    print(
        "durable recovery: 4 sites, flush_time=0.5, crash rate 0.02, "
        "30% tail loss on crash"
    )
    print()
    rows = []
    abort_records = {}
    replay_exact = True
    resolved_total = 0
    for protocol in PROTOCOLS:
        sim, result = run_protocol(protocol)
        abort_records[protocol] = sum(
            1
            for log in sim.durability._logs
            for record in log
            if record[0] == "decision" and record[3] == "abort"
        )
        resolved_total += result.in_doubt_resolved
        for report in sim.durability.recovery_reports:
            if report["reacquired"] != report["implied"]:
                replay_exact = False
        rows.append(
            [
                protocol,
                f"{result.committed}/{result.total}",
                result.crashes,
                result.log_forces,
                result.log_replays,
                result.in_doubt_resolved,
                result.tail_losses,
                f"{result.end_time:.0f}",
            ]
        )
    print(
        format_table(
            [
                "protocol",
                "committed",
                "crashes",
                "log forces",
                "replays",
                "in-doubt resolved",
                "tail lost",
                "end",
            ],
            rows,
        )
    )
    print()
    print(
        "every replay re-acquired exactly the log-implied locks: "
        f"{replay_exact}"
    )
    print(f"in-doubt participants resolved by inquiry: {resolved_total}")
    print(
        "forced abort records: two-phase="
        f"{abort_records['two-phase']}, presumed-abort="
        f"{abort_records['presumed-abort']} (presumed-abort logs "
        "nothing about aborting rounds: "
        f"{abort_records['presumed-abort'] == 0})"
    )


if __name__ == "__main__":
    main()
