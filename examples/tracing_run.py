"""The observability layer: tracing, metrics, and the flight recorder.

Every simulation so far has been a black box: transactions go in, a
:class:`~repro.sim.metrics.SimulationResult` comes out. This demo
turns the lights on with :mod:`repro.sim.observe` — and shows that
doing so changes *nothing* about the run itself.

Part 1 runs a contended open system twice, plain and fully
instrumented, and compares the results field by field: identical.
Probes observe; they never schedule, never draw randomness, never
touch an outcome. (With observability *disabled* the layer is free by
construction — nothing attaches to the runtime at all.)

Part 2 reads the instrumented run's artifacts:

* the **tracer**'s ring buffer — structured records of every lock
  wait/hold, transaction lifecycle mark, and abort *with its cause*
  (wound, death, timeout, detected, crash, cascade...), exportable as
  JSONL or as a Chrome ``trace_event`` file you can drop into
  https://ui.perfetto.dev;
* the **sampler**'s windowed time series — in-flight concurrency,
  blocked-set size, waits-for edge count, per-site queue depths,
  abort rates — whose integral reproduces the run's own time-averaged
  concurrency exactly;
* the **flight recorder**'s post-mortem dumps — on each anomaly
  (deadlock detected, site crash, abort cascade) it writes the last-N
  events plus a Graphviz snapshot of the waits-for graph at the
  moment things went wrong.

Run:  python examples/tracing_run.py
"""

import json
import tempfile
from pathlib import Path

from repro.core.system import TransactionSystem
from repro.sim import ObserveConfig, SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec

WORKLOAD = WorkloadSpec(
    n_entities=12,
    n_sites=3,
    entities_per_txn=(2, 4),
    actions_per_entity=(0, 2),
    hotspot_skew=0.8,
)


def run(observe: ObserveConfig | None):
    config = SimulationConfig(
        arrival_rate=0.3,
        max_transactions=250,
        workload=WORKLOAD,
        workload_seed=3,
        seed=1,
        detection_interval=4.0,
        observe=observe,
    )
    sim = Simulator(TransactionSystem([]), "detect", config)
    sim.run()
    return sim


def main() -> None:
    out_dir = Path(tempfile.mkdtemp(prefix="repro-trace-"))

    print("— part 1: observation changes nothing —")
    plain = run(None)
    observed = run(
        ObserveConfig(
            trace=True,
            metrics_window=50.0,
            flight_recorder=str(out_dir / "flight"),
        )
    )
    same = (
        plain.result.committed == observed.result.committed
        and plain.result.aborts == observed.result.aborts
        and plain.result.end_time == observed.result.end_time
        and plain.result.latencies == observed.result.latencies
    )
    print(
        f"committed={observed.result.committed} "
        f"aborts={observed.result.aborts} "
        f"end_time={observed.result.end_time:.1f}"
    )
    print(f"identical to the unobserved run: {same}")

    print()
    print("— part 2a: the tracer —")
    tracer = observed.observe.tracer
    print(f"retained {len(tracer)} records ({tracer.dropped} dropped)")
    causes = {}
    for rec in tracer.records():
        if rec["kind"] == "abort":
            causes[rec["cause"]] = causes.get(rec["cause"], 0) + 1
    print(
        "abort causes: "
        + ", ".join(f"{c}={n}" for c, n in sorted(causes.items()))
    )
    chrome = out_dir / "trace.json"
    n = tracer.export_chrome(str(chrome))
    print(f"chrome trace: {n} events -> {chrome}")
    print("  (open it at https://ui.perfetto.dev)")

    print()
    print("— part 2b: the sampler —")
    series = observed.result.timeseries
    windows = series["windows"]
    print(f"{len(windows)} windows of {series['window']:g} time units")
    for w in windows[:4]:
        print(
            f"  [{w['t0']:>6.1f}, {w['t1']:>6.1f})  "
            f"inflight={w['inflight_mean']:5.2f}  "
            f"blocked={w['blocked_mean']:5.2f}  "
            f"aborts={w['aborts']:>3}"
        )
    area = sum(w["inflight_mean"] * (w["t1"] - w["t0"]) for w in windows)
    exact = abs(area - observed.result.inflight_area) < 1e-6
    print(f"series integrates back to the run's own aggregate: {exact}")

    print()
    print("— part 2c: the flight recorder —")
    flight = observed.observe.flight
    print(f"{len(flight.dumps)} anomaly dump(s):")
    for dump in flight.dumps[:3]:
        dot = Path(dump["waits_for"]).read_text()
        edges = dot.count("->")
        print(
            f"  t={dump['time']:>7.1f}  {dump['reason']:<18} "
            f"waits-for snapshot: {edges} edge(s)"
        )
    with open(flight.dumps[0]["events"]) as fh:
        records = [json.loads(line) for line in fh]
    print(f"first dump retained {len(records)} events before the anomaly")


if __name__ == "__main__":
    main()
