"""A guided tour of the paper's figures and theorems, executable.

Walks Figure 1 (the reduction graph), Figure 2 (Tirri's oversight),
Figure 3 (why deadlock-freedom is not extension-reducible), Theorem 3
(the O(n^2) pair test), Corollary 3 / Theorem 5 (copies), and Figure 6
(why Theorem 5 has no deadlock-only analogue).

Run:  python examples/paper_tour.py
"""

from repro import (
    Transaction,
    TransactionSystem,
    check_copies,
    check_pair,
    check_two_copies,
    find_deadlock,
    reduction_graph,
    tirri_check_pair,
)
from repro.core.reduction import is_deadlock_prefix
from repro.paper import figures


def section(title: str) -> None:
    print()
    print(f"——— {title} ———")


def main() -> None:
    section("Figure 1: a deadlock prefix and its reduction graph")
    system = figures.figure1()
    prefix = figures.figure1_prefix(system)
    print(prefix.describe())
    graph = reduction_graph(prefix)
    cycle = graph.find_cycle()
    print(
        "reduction-graph cycle: "
        + " -> ".join(system.describe_node(g) for g in cycle)
    )
    print(f"deadlock prefix (has schedule + cyclic R): "
          f"{is_deadlock_prefix(prefix)}")

    section("Figure 2: Tirri's premise is wrong")
    pair = figures.figure2()
    print("both transactions share one syntax; all arcs Lock -> Unlock")
    print(f"Tirri's two-entity test: {tirri_check_pair(pair[0], pair[1]).reason}")
    witness = find_deadlock(pair)
    print(f"but the pair deadlocks: {witness.describe()}")

    section("Figure 3: deadlock-freedom is not extension-reducible")
    print(
        "partial orders deadlock-free: "
        f"{find_deadlock(figures.figure3()) is None}"
    )
    print(
        "yet extensions t1=Lx Ly Ux Uy / t2=Ly Lx Ux Uy deadlock: "
        f"{find_deadlock(figures.figure3_extensions()) is not None}"
    )
    print(
        "(for SAFETY the reduction does hold — Corollary 1 covers the "
        "conjunction)"
    )

    section("Theorem 3: the quadratic pair test")
    t1 = Transaction.sequential(
        "T1", ["Lx", "Ly", "Uy", "Lz", "Ux", "Uz"]
    )
    t2 = Transaction.sequential(
        "T2", ["Lx", "Lz", "Ly", "Ux", "Uy", "Uz"]
    )
    verdict = check_pair(t1, t2)
    print(f"{t1.name} vs {t2.name}: {verdict.reason}")
    if verdict:
        print(f"first common lock x = {verdict.details['x']!r}")

    section("Corollary 3 and Theorem 5: copies of one transaction")
    ordered = Transaction.sequential(
        "T", ["Lx", "Ly", "Lz", "Uz", "Uy", "Ux"]
    )
    print(f"ordered 2PL transaction, 2 copies: "
          f"{bool(check_two_copies(ordered))}")
    for d in (3, 5, 8):
        print(f"  {d} copies safe+DF: {bool(check_copies(ordered, d))}")

    section("Figure 6: no deadlock-only analogue of Theorem 5")
    t = figures.figure6()
    two = TransactionSystem.of_copies(t, 2)
    three = TransactionSystem.of_copies(t, 3)
    print(f"2 copies deadlock: {find_deadlock(two) is not None}")
    print(f"3 copies deadlock: {find_deadlock(three) is not None}")
    witness = find_deadlock(three)
    print(f"the 3-copy deadlock: {witness.describe()}")


if __name__ == "__main__":
    main()
