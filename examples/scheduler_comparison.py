"""Compare runtime contention policies on a contended distributed
workload: prevention-by-certification vs the classical runtime schemes.

For a workload the paper's tests certify, pure blocking is optimal (no
aborts, no detector). For an uncertified workload, blocking wedges and
the runtime schemes pay for liveness with aborts. This is the trade-off
the paper's introduction motivates: decide freedom from deadlock *in
advance* when you can.

Run:  python examples/scheduler_comparison.py
"""

import random

from repro.analysis.fixed_k import check_system
from repro.sim.metrics import SimulationResult
from repro.sim.runtime import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec, random_system

POLICIES = ["blocking", "wound-wait", "wait-die", "timeout", "detect"]
SEEDS = range(30)


def average_row(system, policy: str) -> list[object]:
    committed = aborts = deadlocks = 0
    time_total = 0.0
    latency_total = 0.0
    latency_count = 0
    for seed in SEEDS:
        result = simulate(
            system, policy, SimulationConfig(seed=seed)
        )
        committed += result.committed
        aborts += result.aborts
        deadlocks += result.deadlocked
        time_total += result.end_time
        for lat in result.latencies:
            if lat >= 0:
                latency_total += lat
                latency_count += 1
    runs = len(SEEDS)
    mean_latency = latency_total / latency_count if latency_count else 0.0
    return [
        policy,
        f"{committed / runs:.1f}/{len(system)}",
        f"{aborts / runs:.2f}",
        f"{deadlocks}/{runs}",
        f"{time_total / runs:.1f}",
        f"{mean_latency:.1f}",
    ]


def report(system, title: str) -> None:
    from repro.util.render import format_table

    print(f"== {title} ==")
    verdict = check_system(system)
    print(f"statically certified safe+deadlock-free: {bool(verdict)}")
    rows = [average_row(system, policy) for policy in POLICIES]
    print(
        format_table(
            ["policy", "commits", "aborts", "deadlock runs",
             "mean time", "mean latency"],
            rows,
        )
    )
    print()


def main() -> None:
    rng = random.Random(7)
    contended = random_system(
        rng,
        WorkloadSpec(
            n_transactions=6,
            n_entities=5,
            n_sites=3,
            entities_per_txn=(2, 4),
            actions_per_entity=(0, 1),
            hotspot_skew=1.5,
            shape="random",
        ),
    )
    report(contended, "uncertified workload (early unlocks, no order)")

    certified = random_system(
        random.Random(7),
        WorkloadSpec(
            n_transactions=6,
            n_entities=5,
            n_sites=3,
            entities_per_txn=(2, 4),
            actions_per_entity=(0, 1),
            hotspot_skew=1.5,
            shape="ordered_2pl",
        ),
    )
    report(certified, "certified workload (ordered 2PL)")


if __name__ == "__main__":
    main()
