"""Theorem 2 live: satisfiability of a 3SAT' formula *is* deadlock of
two distributed transactions.

The script encodes the paper's Figure 5 formula, walks the certificate
in both directions, and then repeats the equivalence on a random
formula:

* SAT -> the Z-set prefix deadlocks, with the proof's explicit
  reduction-graph cycle;
* the cycle decodes back to a satisfying assignment;
* an independent exhaustive scan over lock-only prefixes agrees.

Run:  python examples/sat_reduction_demo.py
"""

import random

from repro import reduction_graph
from repro.analysis.bipartite import find_lock_only_deadlock_prefix
from repro.paper.figures import figure5_formula
from repro.reductions.cnf import random_three_sat_prime
from repro.reductions.encoding import (
    assignment_to_prefix,
    decode_assignment,
    encode_formula,
    expected_cycle,
    verify_cycle,
)
from repro.reductions.solvers import dpll_solve


def demonstrate(formula, label: str) -> None:
    print(f"== {label}: {formula} ==")
    system = encode_formula(formula)
    t1, t2 = system[0], system[1]
    print(
        f"encoded: {len(system.entities)} entities (one site each), "
        f"|T1| = {t1.node_count}, |T2| = {t2.node_count} nodes"
    )

    assignment = dpll_solve(formula)
    if assignment is None:
        print("UNSAT — Theorem 2: the pair {T1, T2} is deadlock-free")
        witness = find_lock_only_deadlock_prefix(system)
        print(f"independent scan agrees: deadlock prefix = {witness}")
        print()
        return

    print(f"SAT: {assignment}")
    prefix = assignment_to_prefix(formula, system, assignment)
    print("deadlock prefix N = union of Z_i sets:")
    print(prefix.describe())

    cycle = expected_cycle(formula, system, assignment)
    graph = reduction_graph(prefix)
    assert verify_cycle(graph, cycle)
    print("reduction-graph cycle (the proof's components):")
    print("  " + " -> ".join(system.describe_node(g) for g in cycle))

    decoded = decode_assignment(formula, system, cycle)
    assert formula.evaluate(decoded)
    print(f"decoded back from the cycle: {decoded}")
    print()


def main() -> None:
    demonstrate(figure5_formula(), "Figure 5 formula")

    from repro.reductions.cnf import CnfFormula

    demonstrate(
        CnfFormula.from_lists([["a"], ["a"], ["~a"]]),
        "smallest UNSAT 3SAT' instance",
    )

    rng = random.Random(2024)
    demonstrate(random_three_sat_prime(4, rng), "random 3SAT' instance")


if __name__ == "__main__":
    main()
