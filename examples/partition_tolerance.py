"""Partition tolerance: who keeps committing when the network splits?

The adversarial network layer (``repro.sim.network``) can cut a set of
sites off from the rest for a scripted window. Partitioned sites are
*up* — they hold locks, vote, and answer local reads — but no message
crosses the cut, so every protocol stack reveals its true availability
story:

* ``two-phase + rowa`` — ROWA writes must lock **every** replica and
  2PC cannot decide without every participant's vote, so any write
  touching the minority side stalls until the heal. The coordinator's
  retransmission channel backs off, suspicion fires, and the round
  aborts as *unavailable* — no wrong answers, just no progress.
* ``paxos-commit + quorum`` — majority quorums mask the minority side:
  reads and writes that can assemble a majority keep committing
  **during the cut**, and Paxos Commit only needs F+1 of its 2F+1
  acceptors. The minority's missed writes are caught up after the
  heal by the anti-entropy pass.

This demo cuts one site (``s0``) out of five for 60 time units, runs
the same closed batch under both stacks, and reports commits that
landed *inside* the partition window, retransmission effort, and
whether both runs converge (every transaction commits) after the heal.

Run:  python examples/partition_tolerance.py
"""

import random

from repro.sim.network import NetworkConfig
from repro.sim.runtime import SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec, random_system
from repro.util.render import format_table

START, DURATION = 10.0, 60.0

WORKLOAD = WorkloadSpec(
    n_transactions=40,
    n_entities=10,
    n_sites=5,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=0.5,
    read_fraction=0.3,
    replication_factor=3,
)

STACKS = [
    ("two-phase", "rowa"),
    ("paxos-commit", "quorum"),
]


def run_stack(protocol: str, replica: str):
    system = random_system(random.Random(11), WORKLOAD)
    config = SimulationConfig(
        seed=5,
        workload=WORKLOAD,
        commit_protocol=protocol,
        replica_protocol=replica,
        network_delay=0.5,
        commit_timeout=6.0,
        network=NetworkConfig(
            partition_schedule=((START, DURATION, ("s0",)),),
        ),
    )
    sim = Simulator(system, "wound-wait", config)
    result = sim.run()
    in_window = sum(
        1
        for inst in sim._instances
        if START <= inst.commit_time <= START + DURATION
    )
    return result, in_window


def main() -> None:
    print(
        f"partition: site s0 cut off from t={START:g} "
        f"for {DURATION:g} time units (5 sites, 3 copies/entity, "
        f"{WORKLOAD.n_transactions} transactions)"
    )
    print()
    rows = []
    converged = []
    window = {}
    for protocol, replica in STACKS:
        result, in_window = run_stack(protocol, replica)
        window[(protocol, replica)] = in_window
        converged.append(result.committed == result.total)
        rows.append(
            [
                protocol,
                replica,
                in_window,
                f"{result.committed}/{result.total}",
                result.unavailable_aborts,
                result.net_retransmits,
                result.net_dropped,
                f"{result.end_time:.0f}",
            ]
        )
    print(
        format_table(
            [
                "protocol",
                "replica",
                "during the cut",
                "committed",
                "unavail",
                "retransmits",
                "dropped",
                "end",
            ],
            rows,
        )
    )
    print()
    quorum = window[("paxos-commit", "quorum")]
    rowa = window[("two-phase", "rowa")]
    print(
        f"majority side commits during the cut: quorum={quorum}, "
        f"rowa/2PC={rowa} (quorum rides through: {quorum > rowa})"
    )
    print(f"all converge after the heal: {all(converged)}")


if __name__ == "__main__":
    main()
