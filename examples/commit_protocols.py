"""Atomic commit and fault injection: what the commit path costs.

The scheduler-comparison example treats a transaction as committed the
moment its last operation finishes. Real distributed databases cannot:
the sites must *agree* to commit (Gray & Lamport, "Consensus on
Transaction Commit"). This demo runs the same contended workload under
the pluggable commit protocols of :mod:`repro.sim.commit`:

* ``instant``       — the idealised model (free, and the default);
* ``two-phase``     — PREPARE/VOTE/COMMIT/ACK per participant site,
                      locks retained through the PREPARED window;
* ``presumed-abort``— 2PC whose abort path sends no messages,

first on a reliable network, then with sites crashing and recovering
(``failure_rate > 0``), which surfaces abort cascades, blocked
participants, and coordinator-recovery stalls.

Run:  python examples/commit_protocols.py
"""

import random

from repro.sim.metrics import SimulationResult
from repro.sim.runtime import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec, random_system

PROTOCOLS = ["instant", "two-phase", "presumed-abort"]
SEEDS = range(8)


def build_workload():
    return random_system(
        random.Random(11),
        WorkloadSpec(
            n_transactions=6,
            n_entities=5,
            n_sites=3,
            entities_per_txn=(2, 4),
            actions_per_entity=(0, 1),
            hotspot_skew=1.5,
            shape="random",
        ),
    )


def run_matrix(system, failure_rate: float) -> None:
    from repro.util.render import format_table

    rows = []
    for protocol in PROTOCOLS:
        committed = messages = 0
        exec_lat = commit_lat = blocked = 0.0
        crashes = 0
        aborts_by_cause: dict[str, int] = {}
        for seed in SEEDS:
            result = simulate(
                system,
                "wound-wait",
                SimulationConfig(
                    seed=seed,
                    network_delay=0.5,
                    commit_protocol=protocol,
                    failure_rate=failure_rate,
                    repair_time=8.0,
                ),
            )
            committed += result.committed
            messages += result.commit_messages
            exec_lat += result.mean_exec_latency
            commit_lat += result.mean_commit_latency
            blocked += result.prepared_block_time
            crashes += result.crashes
            for cause, count in result.aborts_by_cause.items():
                if count:
                    aborts_by_cause[cause] = (
                        aborts_by_cause.get(cause, 0) + count
                    )
        runs = len(SEEDS)
        causes = ", ".join(
            f"{cause}={count}"
            for cause, count in sorted(aborts_by_cause.items())
        ) or "none"
        rows.append(
            [
                protocol,
                f"{committed}/{runs * len(system)}",
                messages,
                f"{exec_lat / runs:.1f}",
                f"{commit_lat / runs:.1f}",
                f"{blocked:.1f}",
                crashes,
                causes,
            ]
        )
    print(
        format_table(
            ["protocol", "commits", "msgs", "exec-lat", "commit-lat",
             "blocked", "crashes", "aborts by cause"],
            rows,
        )
    )
    print()


def single_run_table(system) -> None:
    results = []
    for protocol in PROTOCOLS:
        results.append(
            simulate(
                system,
                "wound-wait",
                SimulationConfig(
                    seed=3, network_delay=0.5, commit_protocol=protocol
                ),
            )
        )
    print(SimulationResult.summary_table(results))
    print()


def main() -> None:
    system = build_workload()
    print("== one seeded run per protocol (summary table) ==")
    single_run_table(system)

    print("== reliable network (failure rate 0) ==")
    run_matrix(system, failure_rate=0.0)

    print("== crashing sites (failure rate 0.02, mean repair 8) ==")
    run_matrix(system, failure_rate=0.02)

    print(
        "takeaways: instant commit is free but fictional; two-phase "
        "commit\npays one message round trip per participant and turns "
        "contention into\nblocked-on-coordinator time; presumed-abort "
        "makes the same decisions\nwith never more messages; crashes "
        "add abort cascades on top."
    )


if __name__ == "__main__":
    main()
