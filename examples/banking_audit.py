"""A realistic workload audit: a three-branch bank with a mix of
transfer, audit, and report transactions.

The script runs the paper's full static pipeline:

1. pairwise Theorem 3 matrix;
2. Theorem 4 over the interaction-graph cycles (a pairwise-clean system
   can still fail through a cycle of three);
3. automatic repair (re-lock two-phase along a global entity order) and
   re-certification;
4. before/after simulation under the blocking scheduler.

Run:  python examples/banking_audit.py
"""

from repro import (
    DatabaseSchema,
    SimulationConfig,
    Transaction,
    TransactionSystem,
    check_pair,
    check_system,
    repair_system,
    simulate,
)
from repro.util.render import format_table


def build_workload() -> TransactionSystem:
    schema = DatabaseSchema.from_groups(
        {
            "branch-A": ["checking", "savings"],
            "branch-B": ["loans", "cards"],
            "branch-C": ["ledger", "rates"],
        }
    )
    # Each transaction releases early (non-2PL) to "improve concurrency"
    # — exactly the pattern that breaks safety.
    transfers = Transaction.sequential(
        "transfer",
        ["Lchecking", "A.checking", "Lsavings", "Uchecking", "A.savings",
         "Usavings"],
        schema,
    )
    lending = Transaction.sequential(
        "lending",
        ["Lsavings", "A.savings", "Lloans", "Usavings", "A.loans",
         "Lledger", "Uloans", "A.ledger", "Uledger"],
        schema,
    )
    billing = Transaction.sequential(
        "billing",
        ["Lcards", "A.cards", "Lledger", "Ucards", "A.ledger", "Uledger"],
        schema,
    )
    reporting = Transaction.sequential(
        "reporting",
        ["Lledger", "A.ledger", "Lchecking", "Uledger", "A.checking",
         "Uchecking"],
        schema,
    )
    return TransactionSystem([transfers, lending, billing, reporting])


def pair_matrix(system: TransactionSystem) -> str:
    rows = []
    n = len(system)
    for i in range(n):
        for j in range(i + 1, n):
            verdict = check_pair(system[i], system[j])
            rows.append(
                [
                    system[i].name,
                    system[j].name,
                    "ok" if verdict else "VIOLATION",
                    verdict.reason,
                ]
            )
    return format_table(["T", "T'", "pair", "detail"], rows)


def main() -> None:
    system = build_workload()
    print("== workload ==")
    for t in system.transactions:
        steps = " ".join(str(op) for op in t.ops)
        print(f"  {t.name}: {steps}")

    print()
    print("== pairwise audit (Theorem 3) ==")
    print(pair_matrix(system))

    print()
    print("== whole-system audit (Theorem 4) ==")
    verdict = check_system(system)
    print(f"safe and deadlock-free? {bool(verdict)}")
    print(verdict.describe())

    print()
    print("== simulate the broken workload ==")
    deadlocks = sum(
        simulate(
            system, "blocking", SimulationConfig(seed=s)
        ).deadlocked
        for s in range(40)
    )
    unserializable = sum(
        simulate(
            system, "blocking", SimulationConfig(seed=s)
        ).serializable is False
        for s in range(40)
    )
    print(
        f"40 random runs: {deadlocks} deadlocks, "
        f"{unserializable} non-serializable histories"
    )

    print()
    print("== repair: re-lock 2PL along a global order ==")
    repaired, order = repair_system(system)
    print(f"global lock order: {order}")
    verdict = check_system(repaired)
    print(f"certified now? {bool(verdict)} ({verdict.reason})")

    print()
    print("== simulate the repaired workload ==")
    deadlocks = 0
    bad = 0
    for s in range(40):
        result = simulate(repaired, "blocking", SimulationConfig(seed=s))
        deadlocks += result.deadlocked
        bad += result.serializable is False
    print(f"40 random runs: {deadlocks} deadlocks, {bad} non-serializable")


if __name__ == "__main__":
    main()
