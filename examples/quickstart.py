"""Quickstart: model two distributed transactions, decide safety and
deadlock-freedom statically, inspect the certificate, and confirm the
verdict dynamically with the simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    DatabaseSchema,
    SimulationConfig,
    Transaction,
    TransactionSystem,
    check_pair,
    find_deadlock,
    simulate,
)


def main() -> None:
    # A two-site database: account rows at the branches.
    schema = DatabaseSchema.from_groups(
        {"branch-A": ["acct1"], "branch-B": ["acct2"]}
    )

    # Two funds transfers written in opposite directions — the classic
    # deadlock recipe, here spread over two sites.
    t1 = Transaction.sequential(
        "transfer-1-to-2",
        ["Lacct1", "A.acct1", "Lacct2", "A.acct2", "Uacct1", "Uacct2"],
        schema,
    )
    t2 = Transaction.sequential(
        "transfer-2-to-1",
        ["Lacct2", "A.acct2", "Lacct1", "A.acct1", "Uacct2", "Uacct1"],
        schema,
    )

    print("== static analysis (Theorem 3) ==")
    verdict = check_pair(t1, t2)
    print(f"safe and deadlock-free? {bool(verdict)}")
    print(f"reason: {verdict.reason}")
    if verdict.witness is not None:
        print(f"certificate: {verdict.witness.describe()}")

    print()
    print("== exhaustive confirmation ==")
    system = TransactionSystem([t1, t2])
    witness = find_deadlock(system)
    if witness is None:
        print("no reachable deadlock")
    else:
        print(f"deadlock partial schedule: {witness.describe()}")

    print()
    print("== dynamic confirmation (simulator) ==")
    for seed in range(10):
        result = simulate(system, "blocking", SimulationConfig(seed=seed))
        if result.deadlocked:
            print(
                f"seed {seed}: DEADLOCK at t={result.end_time:.1f}, "
                f"wait-for cycle {result.deadlock_cycle}"
            )
            break
    else:
        print("no deadlock in 10 seeds (try more)")

    print()
    print("== the fix: agree on a lock order ==")
    t2_fixed = Transaction.sequential(
        "transfer-2-to-1",
        ["Lacct1", "A.acct1", "Lacct2", "A.acct2", "Uacct2", "Uacct1"],
        schema,
    )
    fixed = check_pair(t1, t2_fixed)
    print(f"safe and deadlock-free now? {bool(fixed)} ({fixed.reason})")
    result = simulate(
        TransactionSystem([t1, t2_fixed]), "blocking", SimulationConfig()
    )
    print(
        f"simulated: committed {result.committed}/2, "
        f"serializable={result.serializable}"
    )


if __name__ == "__main__":
    main()
